package datalet

import (
	"bufio"
	"fmt"
	"sync"
	"testing"

	"bespokv/internal/store"
	"bespokv/internal/store/ht"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// lockstepClient reproduces the pre-pipelining client for comparison: one
// mutex held across write → flush → read, so concurrent callers serialize
// and the connection carries exactly one request per round-trip.
type lockstepClient struct {
	mu    sync.Mutex
	conn  transport.Conn
	codec wire.Codec
	br    *bufio.Reader
	bw    *bufio.Writer
	seq   uint64
}

func dialLockstep(network transport.Network, addr string, codec wire.Codec) (*lockstepClient, error) {
	conn, err := network.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &lockstepClient{
		conn:  conn,
		codec: codec,
		br:    bufio.NewReader(conn),
		bw:    bufio.NewWriter(conn),
	}, nil
}

func (c *lockstepClient) Do(req *wire.Request, resp *wire.Response) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	req.ID = c.seq
	if err := c.codec.WriteRequest(c.bw, req); err != nil {
		return err
	}
	resp.Reset()
	return c.codec.ReadResponse(c.br, resp)
}

func (c *lockstepClient) Close() error { return c.conn.Close() }

type benchDoer interface {
	Do(*wire.Request, *wire.Response) error
}

func benchServer(b *testing.B, tn string) (*Server, transport.Network, wire.Codec) {
	b.Helper()
	net, err := transport.Lookup(tn)
	if err != nil {
		b.Fatal(err)
	}
	codec, _ := wire.LookupCodec("binary")
	srv, err := Serve(Config{
		Name:      "bench",
		Network:   net,
		Addr:      listenAddr(tn),
		Codec:     codec,
		NewEngine: func(string) (store.Engine, error) { return ht.New(), nil },
		Logf:      func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv, net, codec
}

// runConcurrent drives b.N GETs through cli from c concurrent callers.
func runConcurrent(b *testing.B, cli benchDoer, callers int) {
	b.Helper()
	var seed wire.Response
	if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: []byte("bench-key"), Value: []byte("bench-value")}, &seed); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / callers
	for g := 0; g < callers; g++ {
		n := per
		if g == 0 {
			n += b.N % callers
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			key := []byte("bench-key")
			var req wire.Request
			var resp wire.Response
			for i := 0; i < n; i++ {
				req = wire.Request{Op: wire.OpGet, Key: key}
				if err := cli.Do(&req, &resp); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

var benchCallers = []int{1, 4, 16, 64}

// BenchmarkPipelined measures the multiplexed client: one connection, all
// callers in flight together, coalesced flushes.
func BenchmarkPipelined(b *testing.B) {
	for _, tn := range []string{"inproc", "tcp"} {
		b.Run(tn, func(b *testing.B) {
			for _, c := range benchCallers {
				b.Run(fmt.Sprintf("c%d", c), func(b *testing.B) {
					srv, net, codec := benchServer(b, tn)
					cli, err := Dial(net, srv.Addr(), codec)
					if err != nil {
						b.Fatal(err)
					}
					defer cli.Close()
					runConcurrent(b, cli, c)
				})
			}
		})
	}
}

// BenchmarkLockstep measures the old design on the same workload: the
// mutex serializes callers, so a single connection is bound to 1/RTT.
func BenchmarkLockstep(b *testing.B) {
	for _, tn := range []string{"inproc", "tcp"} {
		b.Run(tn, func(b *testing.B) {
			for _, c := range benchCallers {
				b.Run(fmt.Sprintf("c%d", c), func(b *testing.B) {
					srv, net, codec := benchServer(b, tn)
					cli, err := dialLockstep(net, srv.Addr(), codec)
					if err != nil {
						b.Fatal(err)
					}
					defer cli.Close()
					runConcurrent(b, cli, c)
				})
			}
		})
	}
}

// BenchmarkPipelinedWindow measures 16 concurrent callers each keeping a
// window of DoAsync requests in flight on one shared connection — the
// controlet fan-out shape (chain forwarding, write-all, propagation) at
// client-driver concurrency. Each caller amortizes its own wakeup across
// the window, so this isolates the connection's capacity from per-call
// scheduling costs.
func BenchmarkPipelinedWindow(b *testing.B) {
	const callers = 16
	const window = 16
	for _, tn := range []string{"inproc", "tcp"} {
		b.Run(tn, func(b *testing.B) {
			srv, net, codec := benchServer(b, tn)
			cli, err := Dial(net, srv.Addr(), codec)
			if err != nil {
				b.Fatal(err)
			}
			defer cli.Close()
			var seed wire.Response
			if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: []byte("bench-key"), Value: []byte("bench-value")}, &seed); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / callers
			for g := 0; g < callers; g++ {
				n := per
				if g == 0 {
					n += b.N % callers
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					key := []byte("bench-key")
					reqs := make([]*wire.Request, window)
					resps := make([]*wire.Response, window)
					acks := make([]<-chan error, window)
					for i := range reqs {
						reqs[i] = new(wire.Request)
						resps[i] = new(wire.Response)
					}
					for done := 0; done < n; {
						w := window
						if n-done < w {
							w = n - done
						}
						for i := 0; i < w; i++ {
							*reqs[i] = wire.Request{Op: wire.OpGet, Key: key}
							acks[i] = cli.DoAsync(reqs[i], resps[i])
						}
						for i := 0; i < w; i++ {
							if err := <-acks[i]; err != nil {
								b.Error(err)
								return
							}
						}
						done += w
					}
				}(n)
			}
			wg.Wait()
		})
	}
}

// BenchmarkPipelinedAsync measures DoAsync fan-out: each caller keeps a
// window of requests in flight, the shape the controlet replication paths
// (chain forwarding, write-all, propagation) use.
func BenchmarkPipelinedAsync(b *testing.B) {
	const window = 16
	srv, net, codec := benchServer(b, "inproc")
	cli, err := Dial(net, srv.Addr(), codec)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	var seed wire.Response
	if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: []byte("bench-key"), Value: []byte("bench-value")}, &seed); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	reqs := make([]*wire.Request, window)
	resps := make([]*wire.Response, window)
	acks := make([]<-chan error, window)
	for i := range reqs {
		reqs[i] = new(wire.Request)
		resps[i] = new(wire.Response)
	}
	for done := 0; done < b.N; {
		w := window
		if b.N-done < w {
			w = b.N - done
		}
		for i := 0; i < w; i++ {
			*reqs[i] = wire.Request{Op: wire.OpGet, Key: []byte("bench-key")}
			acks[i] = cli.DoAsync(reqs[i], resps[i])
		}
		for i := 0; i < w; i++ {
			if err := <-acks[i]; err != nil {
				b.Fatal(err)
			}
		}
		done += w
	}
}
