package datalet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/store"
	"bespokv/internal/store/ht"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// slowPutEngine stretches every Put to a fixed service time so a tiny
// inflight cap saturates under a handful of concurrent writers.
type slowPutEngine struct {
	store.Engine
	delay time.Duration
}

func (s slowPutEngine) Put(key, value []byte, version uint64) (uint64, error) {
	time.Sleep(s.delay)
	return s.Engine.Put(key, value, version)
}

// TestDataletShedsUnderOverload drives a MaxInflight=1 datalet with slow
// puts from several concurrent connections: the admission gate must shed
// part of the storm with the retryable StatusOverloaded while still
// completing real work — and control-lane ops (pings) must sail through
// the saturated gate untouched, since they carry the liveness signals.
func TestDataletShedsUnderOverload(t *testing.T) {
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	srv, err := Serve(Config{
		Name:    "shed-test",
		Network: net,
		Codec:   codec,
		// One slot, 5ms service time, 4ms max queue wait (4x target): any
		// op that queues behind another is shed.
		MaxInflight: 1,
		ShedTarget:  time.Millisecond,
		NewEngine: func(string) (store.Engine, error) {
			return slowPutEngine{Engine: ht.New(), delay: 5 * time.Millisecond}, nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var acked, shed, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		cli, err := Dial(net, srv.Addr(), codec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, cli *Client) {
			defer wg.Done()
			defer cli.Close()
			for i := 0; i < 30; i++ {
				var resp wire.Response
				req := wire.Request{
					Op:    wire.OpPut,
					Key:   []byte(fmt.Sprintf("k-%d-%d", w, i)),
					Value: []byte("v"),
				}
				if err := cli.Do(&req, &resp); err != nil {
					other.Add(1)
					continue
				}
				switch resp.Status {
				case wire.StatusOK:
					acked.Add(1)
				case wire.StatusOverloaded:
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}(w, cli)
	}

	// While the storm rages, control-lane pings must never be gated: every
	// one answers OK even though the data gate is saturated.
	ctl, err := Dial(net, srv.Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	for i := 0; i < 20; i++ {
		var resp wire.Response
		if err := ctl.Do(&wire.Request{Op: wire.OpNop}, &resp); err != nil {
			t.Fatalf("ping %d during overload: %v", i, err)
		}
		if resp.Status == wire.StatusOverloaded {
			t.Fatalf("ping %d shed: control lane must bypass the gate", i)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	t.Logf("storm: %d acked, %d shed, %d other", acked.Load(), shed.Load(), other.Load())
	if acked.Load() == 0 {
		t.Fatal("an overloaded datalet must still complete admitted work")
	}
	if shed.Load() == 0 {
		t.Fatal("six writers against one 5ms slot must trip the shedder")
	}
	if other.Load() != 0 {
		t.Fatalf("%d ops failed with something other than OK/Overloaded", other.Load())
	}
}

// TestDataletDropsExpiredDeadline: a data op arriving with an already-spent
// deadline budget is dropped with StatusOverloaded before touching the
// engine, and a roomy budget rides through untouched.
func TestDataletDropsExpiredDeadline(t *testing.T) {
	_, cli := newServer(t, "binary", nil)
	var resp wire.Response
	// 1ns of budget is gone by the time the handler looks at the clock.
	req := wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("v"), Deadline: 1}
	if err := cli.Do(&req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOverloaded {
		t.Fatalf("expired-deadline put: status %v, want Overloaded", resp.Status)
	}
	resp.Reset()
	req = wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("v"), Deadline: uint64(time.Minute)}
	if err := cli.Do(&req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("roomy-deadline put: %+v", resp)
	}
	resp.Reset()
	if err := cli.Do(&wire.Request{Op: wire.OpGet, Key: []byte("k")}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || string(resp.Value) != "v" {
		t.Fatalf("read back: %+v", resp)
	}
}
