package datalet

import (
	"fmt"
	"sync"
	"testing"

	"bespokv/internal/store"
	"bespokv/internal/store/btree"
	"bespokv/internal/store/ht"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

func newServer(t *testing.T, codecName string, newEngine func(string) (store.Engine, error)) (*Server, *Client) {
	t.Helper()
	net, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	codec, err := wire.LookupCodec(codecName)
	if err != nil {
		t.Fatal(err)
	}
	if newEngine == nil {
		newEngine = func(string) (store.Engine, error) { return ht.New(), nil }
	}
	srv, err := Serve(Config{
		Name:      "test",
		Network:   net,
		Addr:      "",
		Codec:     codec,
		NewEngine: newEngine,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(net, srv.Addr(), codec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func do(t *testing.T, c *Client, req wire.Request) wire.Response {
	t.Helper()
	var resp wire.Response
	if err := c.Do(&req, &resp); err != nil {
		t.Fatalf("Do(%s): %v", req.Op, err)
	}
	return resp
}

func TestPutGetDelOverBothCodecs(t *testing.T) {
	for _, codec := range []string{"binary", "text"} {
		codec := codec
		t.Run(codec, func(t *testing.T) {
			_, cli := newServer(t, codec, nil)
			r := do(t, cli, wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("v")})
			if r.Status != wire.StatusOK || r.Version == 0 {
				t.Fatalf("put: %+v", r)
			}
			r = do(t, cli, wire.Request{Op: wire.OpGet, Key: []byte("k")})
			if r.Status != wire.StatusOK || string(r.Value) != "v" {
				t.Fatalf("get: %+v", r)
			}
			r = do(t, cli, wire.Request{Op: wire.OpDel, Key: []byte("k")})
			if r.Status != wire.StatusOK {
				t.Fatalf("del: %+v", r)
			}
			r = do(t, cli, wire.Request{Op: wire.OpGet, Key: []byte("k")})
			if r.Status != wire.StatusNotFound {
				t.Fatalf("get after del: %+v", r)
			}
			r = do(t, cli, wire.Request{Op: wire.OpDel, Key: []byte("k")})
			if r.Status != wire.StatusNotFound {
				t.Fatalf("del missing: %+v", r)
			}
		})
	}
}

func TestTables(t *testing.T) {
	_, cli := newServer(t, "binary", nil)
	r := do(t, cli, wire.Request{Op: wire.OpCreateTable, Table: "jobs"})
	if r.Status != wire.StatusOK {
		t.Fatalf("create: %+v", r)
	}
	do(t, cli, wire.Request{Op: wire.OpPut, Table: "jobs", Key: []byte("j1"), Value: []byte("running")})
	do(t, cli, wire.Request{Op: wire.OpPut, Key: []byte("j1"), Value: []byte("default-table")})
	r = do(t, cli, wire.Request{Op: wire.OpGet, Table: "jobs", Key: []byte("j1")})
	if string(r.Value) != "running" {
		t.Fatalf("tables not isolated: %+v", r)
	}
	// Unknown table fails.
	r = do(t, cli, wire.Request{Op: wire.OpPut, Table: "nope", Key: []byte("k"), Value: []byte("v")})
	if r.Status != wire.StatusNotFound {
		t.Fatalf("unknown table: %+v", r)
	}
	// Drop and confirm gone.
	r = do(t, cli, wire.Request{Op: wire.OpDeleteTable, Table: "jobs"})
	if r.Status != wire.StatusOK {
		t.Fatalf("drop: %+v", r)
	}
	r = do(t, cli, wire.Request{Op: wire.OpGet, Table: "jobs", Key: []byte("j1")})
	if r.Status != wire.StatusNotFound {
		t.Fatalf("dropped table still answers: %+v", r)
	}
	// Default table cannot be dropped.
	r = do(t, cli, wire.Request{Op: wire.OpDeleteTable, Table: ""})
	if r.Status == wire.StatusOK {
		t.Fatal("default table must not be droppable")
	}
}

func TestScanOrderedEngine(t *testing.T) {
	_, cli := newServer(t, "binary", func(string) (store.Engine, error) { return btree.New(), nil })
	for i := 0; i < 20; i++ {
		do(t, cli, wire.Request{Op: wire.OpPut, Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte("v")})
	}
	r := do(t, cli, wire.Request{Op: wire.OpScan, Key: []byte("k05"), EndKey: []byte("k10"), Limit: 3})
	if r.Status != wire.StatusOK || len(r.Pairs) != 3 {
		t.Fatalf("scan: %+v", r)
	}
	if string(r.Pairs[0].Key) != "k05" || string(r.Pairs[2].Key) != "k07" {
		t.Fatalf("scan keys wrong: %v", r.Pairs)
	}
}

// The hash engine used to reject scans; migration needs them on every
// engine, so ht now serves sorted-at-snapshot scans like the ordered ones.
func TestScanHashEngine(t *testing.T) {
	_, cli := newServer(t, "binary", nil) // ht
	for i := 0; i < 20; i++ {
		do(t, cli, wire.Request{Op: wire.OpPut, Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte("v")})
	}
	r := do(t, cli, wire.Request{Op: wire.OpScan, Key: []byte("k05"), EndKey: []byte("k10"), Limit: 3})
	if r.Status != wire.StatusOK || len(r.Pairs) != 3 {
		t.Fatalf("scan: %+v", r)
	}
	if string(r.Pairs[0].Key) != "k05" || string(r.Pairs[2].Key) != "k07" {
		t.Fatalf("scan keys wrong: %v", r.Pairs)
	}
}

func TestDelRange(t *testing.T) {
	_, cli := newServer(t, "binary", nil) // ht
	const n = 1200                        // several delRange chunks
	for i := 0; i < n; i++ {
		do(t, cli, wire.Request{Op: wire.OpPut, Key: []byte(fmt.Sprintf("key-%04d", i)), Value: []byte("v")})
	}
	r := do(t, cli, wire.Request{Op: wire.OpDelRange, Key: []byte("key-0100"), EndKey: []byte("key-0200")})
	if r.Status != wire.StatusOK || r.Version != 100 {
		t.Fatalf("ranged delete: %+v", r)
	}
	for _, probe := range []struct {
		key  string
		want wire.Status
	}{
		{"key-0099", wire.StatusOK},
		{"key-0100", wire.StatusNotFound},
		{"key-0199", wire.StatusNotFound},
		{"key-0200", wire.StatusOK},
	} {
		if got := do(t, cli, wire.Request{Op: wire.OpGet, Key: []byte(probe.key)}); got.Status != probe.want {
			t.Fatalf("after delrange, GET %s = %v, want %v", probe.key, got.Status, probe.want)
		}
	}
	// Unbounded range clears the rest of the table, across chunk seams.
	r = do(t, cli, wire.Request{Op: wire.OpDelRange})
	if r.Status != wire.StatusOK || r.Version != n-100 {
		t.Fatalf("full-range delete: %+v", r)
	}
	if got := do(t, cli, wire.Request{Op: wire.OpScan}); got.Status != wire.StatusOK || len(got.Pairs) != 0 {
		t.Fatalf("table not empty after full delrange: %+v", got)
	}
}

// TestDelRangeKeepsNewerVersion pins the LWW contract of the GC sweep: a
// record whose stored version is higher than the tombstone the sweep would
// have written is still deleted (tombstone reuses the stored version), but
// a write racing in AFTER the scan with a higher version must survive.
// Exercised at the engine layer since the wire path cannot pause mid-sweep.
func TestDelRangeKeepsNewerVersion(t *testing.T) {
	e := ht.New()
	defer e.Close()
	if _, err := e.Put([]byte("a"), []byte("old"), 5); err != nil {
		t.Fatal(err)
	}
	kvs, err := e.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent writer lands a newer version between scan and delete.
	if _, err := e.Put([]byte("a"), []byte("new"), 9); err != nil {
		t.Fatal(err)
	}
	for _, kv := range kvs {
		if _, _, err := e.Delete(kv.Key, kv.Version); err != nil {
			t.Fatal(err)
		}
	}
	if v, _, ok, _ := e.Get([]byte("a")); !ok || string(v) != "new" {
		t.Fatalf("newer write clobbered by versioned range delete: %q ok=%v", v, ok)
	}
}

func TestVersionedWritesLWW(t *testing.T) {
	_, cli := newServer(t, "binary", nil)
	do(t, cli, wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("new"), Version: 10})
	do(t, cli, wire.Request{Op: wire.OpPut, Key: []byte("k"), Value: []byte("stale"), Version: 5})
	r := do(t, cli, wire.Request{Op: wire.OpGet, Key: []byte("k")})
	if string(r.Value) != "new" || r.Version != 10 {
		t.Fatalf("LWW violated at datalet: %+v", r)
	}
}

func TestExportStream(t *testing.T) {
	srv, cli := newServer(t, "binary", nil)
	const n = 1000 // several batches
	for i := 0; i < n; i++ {
		do(t, cli, wire.Request{Op: wire.OpPut, Key: []byte(fmt.Sprintf("key-%04d", i)), Value: []byte("v")})
	}
	got := map[string]bool{}
	err := cli.Export("", func(kv wire.KV) error {
		got[string(kv.Key)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("export saw %d keys, want %d", len(got), n)
	}
	// Connection still usable after export.
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping after export: %v", err)
	}
	_ = srv
}

func TestExportMissingTable(t *testing.T) {
	_, cli := newServer(t, "binary", nil)
	err := cli.Export("ghost", func(wire.KV) error { return nil })
	if err == nil {
		t.Fatal("export of missing table must fail")
	}
}

func TestStats(t *testing.T) {
	_, cli := newServer(t, "binary", nil)
	do(t, cli, wire.Request{Op: wire.OpCreateTable, Table: "aux"})
	do(t, cli, wire.Request{Op: wire.OpPut, Key: []byte("a"), Value: []byte("1")})
	r := do(t, cli, wire.Request{Op: wire.OpStats})
	if r.Status != wire.StatusOK || string(r.Value) != "ht" {
		t.Fatalf("stats: %+v", r)
	}
	if len(r.Pairs) != 2 {
		t.Fatalf("stats tables: %v", r.Pairs)
	}
	if string(r.Pairs[0].Key) != "" || string(r.Pairs[0].Value) != "1" {
		t.Fatalf("default table stats wrong: %v", r.Pairs)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := newServer(t, "binary", nil)
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := Dial(net, srv.Addr(), codec)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			var resp wire.Response
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, i))
				if err := cli.Do(&wire.Request{Op: wire.OpPut, Key: k, Value: k}, &resp); err != nil {
					errCh <- err
					return
				}
				if err := cli.Do(&wire.Request{Op: wire.OpGet, Key: k}, &resp); err != nil {
					errCh <- err
					return
				}
				if resp.Status != wire.StatusOK || string(resp.Value) != string(k) {
					errCh <- fmt.Errorf("w%d: bad echo %+v", w, resp)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestPoolLeastLoaded(t *testing.T) {
	srv, _ := newServer(t, "binary", nil)
	net, _ := transport.Lookup("inproc")
	codec, _ := wire.LookupCodec("binary")
	pool, err := DialPool(net, srv.Addr(), codec, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var resp wire.Response
	if err := pool.Do(&wire.Request{Op: wire.OpNop}, &resp); err != nil {
		t.Fatal(err)
	}
	// With all connections idle, Get must pick an idle one; artificially
	// loading a client must steer Get away from it.
	busy := pool.Get()
	busy.load.Add(1)
	defer busy.load.Add(-1)
	for i := 0; i < 8; i++ {
		if got := pool.Get(); got == busy {
			t.Fatalf("Get returned the loaded client over %d idle ones", len(pool.clients)-1)
		}
	}
}

func TestClientAfterServerClose(t *testing.T) {
	srv, cli := newServer(t, "binary", nil)
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	var resp wire.Response
	if err := cli.Do(&wire.Request{Op: wire.OpNop}, &resp); err == nil {
		t.Fatal("request after server close must fail")
	}
	// Sticky error.
	if err := cli.Ping(); err == nil {
		t.Fatal("client must stay failed")
	}
}

func TestUnsupportedOp(t *testing.T) {
	_, cli := newServer(t, "binary", nil)
	r := do(t, cli, wire.Request{Op: wire.OpChainPut})
	if r.Status != wire.StatusErr {
		t.Fatalf("chain op on datalet: %+v", r)
	}
}
