// Package trace implements lightweight cross-hop request tracing for the
// data path. A client samples a request head-based (default 1 in 1024),
// stamps it with a nonzero 64-bit trace ID that rides the wire protocol
// (binary: optional trailing field; text: optional tenth element) and the
// rpc frame ("t" field), and every hop that sees a nonzero ID records a
// span — node, stage, start, duration — into a bounded in-memory ring.
// /tracez groups the ring back into whole traces, so one replicated PUT
// can be followed client → controlet → each replica → datalet.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSampleEvery is the head-based sampling rate: one traced request
// per this many Sample calls.
const DefaultSampleEvery = 1024

var (
	sampleEvery atomic.Uint64
	sampleSeq   atomic.Uint64
)

func init() { sampleEvery.Store(DefaultSampleEvery) }

// SetSampleEvery sets the global sampling rate: every n-th request is
// traced. 1 traces everything (tests), 0 disables sampling entirely.
func SetSampleEvery(n uint64) { sampleEvery.Store(n) }

// SampleEvery returns the current sampling rate.
func SampleEvery() uint64 { return sampleEvery.Load() }

// Sample makes the head-based sampling decision for a new request. It
// returns 0 (not traced) or a fresh nonzero trace ID. The unsampled path
// is one atomic add.
func Sample() uint64 {
	n := sampleEvery.Load()
	if n == 0 {
		return 0
	}
	c := sampleSeq.Add(1)
	if n > 1 && c%n != 0 {
		return 0
	}
	return mix64(c) | 1 // mixed so IDs are spread out; |1 keeps them nonzero
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Span is one hop's record of a traced request.
type Span struct {
	Trace uint64        `json:"trace"`
	Node  string        `json:"node"`  // e.g. "client", "s0-r1", "s0-r1-datalet"
	Stage string        `json:"stage"` // e.g. "client.PUT", "controlet.CHAINPUT"
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	Err   string        `json:"err,omitempty"`
}

// Trace is a group of spans sharing one ID, as served by /tracez.
type Trace struct {
	ID    uint64        `json:"id"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"` // earliest start to latest end
	Spans []Span        `json:"spans"`
}

// Recorder keeps a bounded ring of recent spans plus the slowest spans
// seen. The zero value is unusable; use NewRecorder.
type Recorder struct {
	mu    sync.Mutex
	ring  []Span // capacity fixed at construction
	next  int    // next slot to overwrite
	full  bool
	total uint64
	slow  []Span // kept sorted descending by Dur, bounded at slowCap
}

const slowCap = 64

// Default is the process-wide recorder all instrumentation records into;
// in the in-process cluster harness every hop shares it, so one /tracez
// shows complete traces.
var Default = NewRecorder(4096)

// NewRecorder returns a recorder retaining the last size spans.
func NewRecorder(size int) *Recorder {
	if size < 1 {
		size = 1
	}
	return &Recorder{ring: make([]Span, 0, size)}
}

// Record stores one span. Call only for sampled requests (tid != 0); the
// cost (mutex + copy) is paid roughly once per 1024 requests per hop at
// the default sampling rate.
func (r *Recorder) Record(tid uint64, node, stage string, start time.Time, dur time.Duration, errStr string) {
	if tid == 0 {
		return
	}
	sp := Span{Trace: tid, Node: node, Stage: stage, Start: start, Dur: dur, Err: errStr}
	r.mu.Lock()
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, sp)
	} else {
		r.ring[r.next] = sp
		r.next = (r.next + 1) % cap(r.ring)
		r.full = true
	}
	// Insert into the slowest list if it qualifies.
	if len(r.slow) < slowCap || dur > r.slow[len(r.slow)-1].Dur {
		i := sort.Search(len(r.slow), func(i int) bool { return r.slow[i].Dur < dur })
		r.slow = append(r.slow, Span{})
		copy(r.slow[i+1:], r.slow[i:])
		r.slow[i] = sp
		if len(r.slow) > slowCap {
			r.slow = r.slow[:slowCap]
		}
	}
	r.mu.Unlock()
}

// Record stores a span in the Default recorder.
func Record(tid uint64, node, stage string, start time.Time, dur time.Duration, errStr string) {
	Default.Record(tid, node, stage, start, dur, errStr)
}

// Total returns how many spans have ever been recorded.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// snapshot copies the ring in arrival order (oldest first).
func (r *Recorder) snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.ring))
	if r.full {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}

// Traces groups the retained spans into whole traces, most recent first,
// returning at most max (0 = all).
func (r *Recorder) Traces(max int) []Trace {
	spans := r.snapshot()
	byID := map[uint64]*Trace{}
	var order []uint64 // trace IDs by last activity
	for _, sp := range spans {
		tr := byID[sp.Trace]
		if tr == nil {
			tr = &Trace{ID: sp.Trace, Start: sp.Start}
			byID[sp.Trace] = tr
		} else {
			// Move to the back of the activity order lazily via re-append;
			// dedup below.
		}
		order = append(order, sp.Trace)
		tr.Spans = append(tr.Spans, sp)
		if sp.Start.Before(tr.Start) {
			tr.Start = sp.Start
		}
		if end := sp.Start.Add(sp.Dur); end.Sub(tr.Start) > tr.Dur {
			tr.Dur = end.Sub(tr.Start)
		}
	}
	// Most recent activity last in `order`; walk backwards, dedup.
	seen := map[uint64]bool{}
	var out []Trace
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if seen[id] {
			continue
		}
		seen[id] = true
		tr := byID[id]
		sort.Slice(tr.Spans, func(a, b int) bool { return tr.Spans[a].Start.Before(tr.Spans[b].Start) })
		out = append(out, *tr)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Slowest returns the slowest individual spans seen (not bounded by the
// ring), at most max (0 = all retained, up to 64).
func (r *Recorder) Slowest(max int) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.slow)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Span, n)
	copy(out, r.slow[:n])
	return out
}
