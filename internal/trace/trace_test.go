package trace

import (
	"sync"
	"testing"
	"time"
)

func TestSampleRate(t *testing.T) {
	old := SampleEvery()
	defer SetSampleEvery(old)

	SetSampleEvery(1)
	for i := 0; i < 10; i++ {
		if Sample() == 0 {
			t.Fatal("SetSampleEvery(1) must trace every request")
		}
	}

	SetSampleEvery(0)
	for i := 0; i < 10; i++ {
		if Sample() != 0 {
			t.Fatal("SetSampleEvery(0) must disable tracing")
		}
	}

	SetSampleEvery(8)
	hits := 0
	for i := 0; i < 8000; i++ {
		if Sample() != 0 {
			hits++
		}
	}
	if hits < 900 || hits > 1100 {
		t.Fatalf("1/8 sampling over 8000 calls hit %d times", hits)
	}
}

func TestSampleIDsNonzeroAndDistinct(t *testing.T) {
	old := SampleEvery()
	defer SetSampleEvery(old)
	SetSampleEvery(1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := Sample()
		if id == 0 {
			t.Fatal("sampled ID must be nonzero")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %x", id)
		}
		seen[id] = true
	}
}

func TestRecorderGroupsTraces(t *testing.T) {
	r := NewRecorder(128)
	base := time.Now()
	r.Record(7, "client", "client.PUT", base, 5*time.Millisecond, "")
	r.Record(7, "s0-r0", "controlet.PUT", base.Add(time.Millisecond), 3*time.Millisecond, "")
	r.Record(7, "s0-r0-datalet", "datalet.PUT", base.Add(2*time.Millisecond), time.Millisecond, "")
	r.Record(9, "client", "client.GET", base.Add(10*time.Millisecond), time.Millisecond, "not found")

	traces := r.Traces(0)
	if len(traces) != 2 {
		t.Fatalf("traces=%d, want 2", len(traces))
	}
	// Most recent first.
	if traces[0].ID != 9 || traces[1].ID != 7 {
		t.Fatalf("order: %x, %x", traces[0].ID, traces[1].ID)
	}
	put := traces[1]
	if len(put.Spans) != 3 {
		t.Fatalf("put spans=%d", len(put.Spans))
	}
	if !put.Start.Equal(base) {
		t.Fatalf("trace start=%v", put.Start)
	}
	if put.Dur != 5*time.Millisecond {
		t.Fatalf("trace dur=%v, want 5ms", put.Dur)
	}
	// Spans sorted by start.
	for i := 1; i < len(put.Spans); i++ {
		if put.Spans[i].Start.Before(put.Spans[i-1].Start) {
			t.Fatal("spans not sorted by start")
		}
	}
	if r.Total() != 4 {
		t.Fatalf("total=%d", r.Total())
	}
}

func TestRecorderRingBound(t *testing.T) {
	r := NewRecorder(8)
	base := time.Now()
	for i := 0; i < 100; i++ {
		r.Record(uint64(i+1), "n", "s", base.Add(time.Duration(i)), time.Microsecond, "")
	}
	traces := r.Traces(0)
	if len(traces) != 8 {
		t.Fatalf("retained %d traces, want 8", len(traces))
	}
	// Newest survive.
	if traces[0].ID != 100 {
		t.Fatalf("newest=%d", traces[0].ID)
	}
}

func TestRecorderSlowest(t *testing.T) {
	r := NewRecorder(4) // tiny ring: slow list must outlive evictions
	base := time.Now()
	r.Record(1, "n", "slowest", base, time.Second, "")
	for i := 0; i < 50; i++ {
		r.Record(uint64(i+2), "n", "fast", base, time.Microsecond, "")
	}
	slow := r.Slowest(5)
	if len(slow) == 0 || slow[0].Stage != "slowest" {
		t.Fatalf("slowest lost: %+v", slow)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Dur > slow[i-1].Dur {
			t.Fatal("slowest not sorted descending")
		}
	}
}

func TestRecorderZeroIDIgnored(t *testing.T) {
	r := NewRecorder(8)
	r.Record(0, "n", "s", time.Now(), time.Second, "")
	if r.Total() != 0 {
		t.Fatal("tid=0 must not be recorded")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(uint64(w*1000+i+1), "n", "s", time.Now(), time.Duration(i), "")
				if i%100 == 0 {
					r.Traces(4)
					r.Slowest(4)
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Fatalf("total=%d", r.Total())
	}
}
