// Package store defines the datalet storage engine contract and common
// helpers. An Engine is a single-node KV store with last-writer-wins
// versioning; the four concrete engines (ht, applog, btree, lsm) mirror the
// data-structure families the paper evaluates — hash table (tHT), persistent
// log (tLog), ordered tree (tMT/Masstree), and LSM-tree (LevelDB-class).
//
// Versioning: every write carries a uint64 version. Version 0 asks the
// engine to assign the next locally monotonic version (normal single-node
// writes); a non-zero version is applied only if it is >= the stored
// version (replicated writes and log replay), which makes propagation
// idempotent and order-insensitive where eventual consistency permits.
// Deletes write tombstones under the same rule so a late Put cannot
// resurrect a newer Delete.
package store

import (
	"bytes"
	"errors"
)

// KV is one live key/value pair with its version, as surfaced by Scan and
// Snapshot.
type KV struct {
	Key     []byte
	Value   []byte
	Version uint64
}

// ErrUnordered is returned by Scan on engines without ordered iteration
// (hash table, append-only log).
var ErrUnordered = errors.New("store: engine does not support ordered scans")

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("store: engine is closed")

// Engine is a single-node KV store.
//
// All methods are safe for concurrent use. Key and value slices passed in
// are copied; slices returned are private copies the caller owns.
type Engine interface {
	// Name identifies the engine family ("ht", "applog", "btree", "lsm").
	Name() string
	// Put stores value under key. If version is zero the engine assigns
	// the next local version; otherwise the write applies only when
	// version >= the stored version. It returns the version stored (or
	// the winning existing version when the write lost).
	Put(key, value []byte, version uint64) (uint64, error)
	// Get returns the live value and version for key; ok is false when
	// the key is absent or deleted.
	Get(key []byte) (value []byte, version uint64, ok bool, err error)
	// Delete removes key under the same versioning rule as Put. existed
	// reports whether a live value was visible before the call; winner is
	// the version now governing the key (the tombstone's version when the
	// delete applied, or the newer existing version when it lost).
	Delete(key []byte, version uint64) (existed bool, winner uint64, err error)
	// Scan returns live pairs with start <= key < end in key order, up to
	// limit (0 = unbounded). An empty end means +infinity. Engines
	// without ordered iteration return ErrUnordered.
	Scan(start, end []byte, limit int) ([]KV, error)
	// Len returns the number of live keys.
	Len() int
	// Snapshot calls fn for every live pair; used for recovery export.
	// Iteration order is engine-specific. fn must not retain the KV's
	// slices past the call.
	Snapshot(fn func(KV) error) error
	// Close releases resources. The engine must not be used afterwards.
	Close() error
}

// Versioned is implemented by engines that expose their monotonic version
// counter. The datalet reports it as the table's current watermark.
type Versioned interface {
	// MaxVersion returns the highest version the engine has assigned or
	// observed.
	MaxVersion() uint64
}

// Recovered is implemented by durable engines that replay local state on
// open. RecoveredVersion is the watermark captured at the end of that
// replay — before any new writes — so a rejoining node can ask a peer for
// exactly the writes it missed while down. The live MaxVersion is wrong
// for that purpose: a node rejoins the write path before catch-up runs,
// so new writes bump the counter past the gap.
type Recovered interface {
	// RecoveredVersion returns the engine's version watermark as of the
	// end of open-time recovery (0 when the engine started empty).
	RecoveredVersion() uint64
}

// DeltaSnapshotter is implemented by engines that can enumerate every
// record — including tombstones — with version > since. ok is false when
// the engine cannot guarantee completeness above since (e.g. compaction
// already dropped tombstones from that range); callers must fall back to
// a full Snapshot export.
type DeltaSnapshotter interface {
	SnapshotSince(since uint64, fn func(kv KV, tombstone bool) error) (ok bool, err error)
}

// InRange reports whether key falls within [start, end); empty end means
// +infinity.
func InRange(key, start, end []byte) bool {
	if bytes.Compare(key, start) < 0 {
		return false
	}
	return len(end) == 0 || bytes.Compare(key, end) < 0
}

// CloneBytes returns a private copy of b (nil stays nil).
func CloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
