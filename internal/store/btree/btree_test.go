package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"bespokv/internal/store"
	"bespokv/internal/store/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine { return New() })
}

// TestManySplits inserts enough keys to force several levels of splits and
// verifies ordered iteration returns everything exactly once, sorted.
func TestManySplits(t *testing.T) {
	s := New()
	defer s.Close()
	const n = 20000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		k := fmt.Sprintf("key-%08d", i)
		if _, err := s.Put([]byte(k), []byte(k), 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len=%d, want %d", s.Len(), n)
	}
	kvs, err := s.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != n {
		t.Fatalf("scan returned %d, want %d", len(kvs), n)
	}
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatalf("scan out of order at %d: %q >= %q", i, kvs[i-1].Key, kvs[i].Key)
		}
	}
	for i := 0; i < n; i += 997 {
		k := fmt.Sprintf("key-%08d", i)
		v, _, ok, err := s.Get([]byte(k))
		if err != nil || !ok || string(v) != k {
			t.Fatalf("Get(%q) = (%q,%v,%v)", k, v, ok, err)
		}
	}
}

// TestTombstonePurgeOnSplit fills a leaf with tombstones and confirms the
// tree purges them rather than splitting forever.
func TestTombstonePurgeOnSplit(t *testing.T) {
	s := New()
	defer s.Close()
	for round := 0; round < 50; round++ {
		for i := 0; i < degree-1; i++ {
			k := []byte(fmt.Sprintf("r%02d-k%02d", round, i))
			if _, err := s.Put(k, []byte("v"), 0); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Delete(k, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len=%d, want 0", s.Len())
	}
	if got := s.Items(); got > 10*degree {
		t.Fatalf("tombstones not purged: %d items remain", got)
	}
}

func TestScanBoundsQuick(t *testing.T) {
	s := New()
	defer s.Close()
	const n = 500
	var keys []string
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%04d", rand.Intn(4000))
		keys = append(keys, k)
		if _, err := s.Put([]byte(k), []byte(k), 0); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(keys)
	uniq := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			uniq = append(uniq, k)
		}
	}
	for trial := 0; trial < 100; trial++ {
		lo := fmt.Sprintf("%04d", rand.Intn(4000))
		hi := fmt.Sprintf("%04d", rand.Intn(4000))
		kvs, err := s.Scan([]byte(lo), []byte(hi), 0)
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		for _, k := range uniq {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		if len(kvs) != len(want) {
			t.Fatalf("scan [%s,%s): got %d keys, want %d", lo, hi, len(kvs), len(want))
		}
		for i := range want {
			if string(kvs[i].Key) != want[i] {
				t.Fatalf("scan [%s,%s)[%d] = %q, want %q", lo, hi, i, kvs[i].Key, want[i])
			}
		}
	}
}

func TestSnapshotAllIncludesTombstones(t *testing.T) {
	s := New()
	defer s.Close()
	s.Put([]byte("a"), []byte("1"), 0)
	s.Put([]byte("b"), []byte("2"), 0)
	s.Delete([]byte("a"), 0)
	var liveN, tombN int
	err := s.SnapshotAll(func(key, value []byte, version uint64, tombstone bool) error {
		if tombstone {
			tombN++
		} else {
			liveN++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if liveN != 1 || tombN != 1 {
		t.Fatalf("live=%d tomb=%d, want 1/1", liveN, tombN)
	}
}

func BenchmarkPut(b *testing.B) {
	s := New()
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key-%09d", i))
		s.Put(k, k, 0)
	}
}

func BenchmarkGet(b *testing.B) {
	s := New()
	defer s.Close()
	const n = 100000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%09d", i))
		s.Put(k, k, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("key-%09d", i%n)))
	}
}
