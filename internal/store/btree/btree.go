// Package btree implements the tMT datalet engine: an in-memory B+-tree
// with linked leaves, the reproduction's stand-in for Masstree. It is the
// only hash-free engine with cheap ordered iteration, so it backs range
// queries (§IV-B) and the read-intensive analytics side of Fig. 6.
//
// Deletions write tombstone items in place, so the tree never rebalances on
// delete; tombstones are skipped by reads and purged when their leaf splits.
package btree

import (
	"bytes"
	"sync"

	"bespokv/internal/store"
)

// degree is the maximum number of items per leaf and children per internal
// node. 64 keeps nodes around a few cache lines of key pointers.
const degree = 64

type entry struct {
	value     []byte
	version   uint64
	tombstone bool
}

type node struct {
	leaf     bool
	keys     [][]byte // per-item (leaf) or separator (internal) keys
	items    []entry  // leaf payloads, parallel to keys
	children []*node  // internal fan-out, len(keys)+1
	next     *node    // leaf sibling link for ordered scans
}

// Store is the B+-tree engine.
type Store struct {
	mu     sync.RWMutex
	root   *node
	live   int
	maxVer uint64
	closed bool
}

// New returns an empty B+-tree engine.
func New() *Store {
	return &Store{root: &node{leaf: true}}
}

// Name reports "btree".
func (s *Store) Name() string { return "btree" }

// findLeaf descends to the leaf that owns key, remembering the path for
// splits.
func (s *Store) findLeaf(key []byte, path *[]*node) *node {
	n := s.root
	for !n.leaf {
		if path != nil {
			*path = append(*path, n)
		}
		i := searchFirstGreater(n.keys, key)
		n = n.children[i]
	}
	return n
}

// searchFirstGreater returns the index of the first key strictly greater
// than k (internal-node child selection: child i holds keys <= keys[i]).
func searchFirstGreater(keys [][]byte, k []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchLeaf returns the position of k in a leaf and whether it is present.
func searchLeaf(keys [][]byte, k []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && bytes.Equal(keys[lo], k)
}

func (s *Store) write(key []byte, e entry) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, store.ErrClosed
	}
	if e.version == 0 {
		s.maxVer++
		e.version = s.maxVer
	} else if e.version > s.maxVer {
		s.maxVer = e.version
	}
	var path []*node
	leaf := s.findLeaf(key, &path)
	i, found := searchLeaf(leaf.keys, key)
	if found {
		old := leaf.items[i]
		if e.version < old.version {
			return old.version, nil
		}
		if old.tombstone && !e.tombstone {
			s.live++
		} else if !old.tombstone && e.tombstone {
			s.live--
		}
		leaf.items[i] = e
		return e.version, nil
	}
	leaf.keys = append(leaf.keys, nil)
	copy(leaf.keys[i+1:], leaf.keys[i:])
	leaf.keys[i] = store.CloneBytes(key)
	leaf.items = append(leaf.items, entry{})
	copy(leaf.items[i+1:], leaf.items[i:])
	leaf.items[i] = e
	if !e.tombstone {
		s.live++
	}
	if len(leaf.keys) >= degree {
		s.splitLeaf(leaf, path)
	}
	return e.version, nil
}

// splitLeaf splits an overfull leaf, purging tombstones first when that
// alone restores headroom, then propagates splits up the remembered path.
func (s *Store) splitLeaf(leaf *node, path []*node) {
	if purged := purgeTombstones(leaf); purged && len(leaf.keys) < degree-degree/4 {
		return
	}
	mid := len(leaf.keys) / 2
	right := &node{leaf: true, next: leaf.next}
	right.keys = append(right.keys, leaf.keys[mid:]...)
	right.items = append(right.items, leaf.items[mid:]...)
	leaf.keys = leaf.keys[:mid:mid]
	leaf.items = leaf.items[:mid:mid]
	leaf.next = right
	s.insertUp(path, leaf, right, right.keys[0])
}

func purgeTombstones(leaf *node) bool {
	w := 0
	for i := range leaf.keys {
		if leaf.items[i].tombstone {
			continue
		}
		leaf.keys[w] = leaf.keys[i]
		leaf.items[w] = leaf.items[i]
		w++
	}
	if w == len(leaf.keys) {
		return false
	}
	leaf.keys = leaf.keys[:w]
	leaf.items = leaf.items[:w]
	return true
}

// insertUp installs right as the sibling of left under the deepest node in
// path, splitting internal nodes as needed. sep is the smallest key in
// right's subtree.
func (s *Store) insertUp(path []*node, left, right *node, sep []byte) {
	for {
		if len(path) == 0 {
			s.root = &node{
				keys:     [][]byte{sep},
				children: []*node{left, right},
			}
			return
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		i := searchFirstGreater(parent.keys, sep)
		parent.keys = append(parent.keys, nil)
		copy(parent.keys[i+1:], parent.keys[i:])
		parent.keys[i] = sep
		parent.children = append(parent.children, nil)
		copy(parent.children[i+2:], parent.children[i+1:])
		parent.children[i+1] = right
		if len(parent.children) <= degree {
			return
		}
		mid := len(parent.keys) / 2
		sep = parent.keys[mid]
		newRight := &node{
			keys:     append([][]byte(nil), parent.keys[mid+1:]...),
			children: append([]*node(nil), parent.children[mid+1:]...),
		}
		parent.keys = parent.keys[:mid:mid]
		parent.children = parent.children[: mid+1 : mid+1]
		left, right = parent, newRight
	}
}

// Put stores value under key with LWW semantics.
func (s *Store) Put(key, value []byte, version uint64) (uint64, error) {
	return s.write(key, entry{value: store.CloneBytes(value), version: version})
}

// Delete writes a tombstone for key.
func (s *Store) Delete(key []byte, version uint64) (bool, uint64, error) {
	s.mu.RLock()
	_, _, existed, _ := s.getLocked(key)
	s.mu.RUnlock()
	winner, err := s.write(key, entry{version: version, tombstone: true})
	if err != nil {
		return false, 0, err
	}
	return existed, winner, nil
}

func (s *Store) getLocked(key []byte) ([]byte, uint64, bool, error) {
	if s.closed {
		return nil, 0, false, store.ErrClosed
	}
	leaf := s.findLeaf(key, nil)
	i, found := searchLeaf(leaf.keys, key)
	if !found || leaf.items[i].tombstone {
		return nil, 0, false, nil
	}
	return store.CloneBytes(leaf.items[i].value), leaf.items[i].version, true, nil
}

// Get returns the live value for key.
func (s *Store) Get(key []byte) ([]byte, uint64, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.getLocked(key)
}

// Scan returns live pairs in [start, end) in key order.
func (s *Store) Scan(start, end []byte, limit int) ([]store.KV, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, store.ErrClosed
	}
	var out []store.KV
	leaf := s.findLeaf(start, nil)
	i, _ := searchLeaf(leaf.keys, start)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if len(end) != 0 && bytes.Compare(leaf.keys[i], end) >= 0 {
				return out, nil
			}
			if leaf.items[i].tombstone {
				continue
			}
			out = append(out, store.KV{
				Key:     store.CloneBytes(leaf.keys[i]),
				Value:   store.CloneBytes(leaf.items[i].value),
				Version: leaf.items[i].version,
			})
			if limit > 0 && len(out) >= limit {
				return out, nil
			}
		}
		leaf = leaf.next
		i = 0
	}
	return out, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// Snapshot calls fn for every live pair in key order.
func (s *Store) Snapshot(fn func(store.KV) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return store.ErrClosed
	}
	leaf := s.leftmostLeaf()
	for leaf != nil {
		for i := range leaf.keys {
			if leaf.items[i].tombstone {
				continue
			}
			kv := store.KV{Key: leaf.keys[i], Value: leaf.items[i].value, Version: leaf.items[i].version}
			if err := fn(kv); err != nil {
				return err
			}
		}
		leaf = leaf.next
	}
	return nil
}

func (s *Store) leftmostLeaf() *node {
	n := s.root
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

// SnapshotAll calls fn for every item including tombstones, in key order.
// The LSM engine uses it when flushing a memtable so deletions propagate.
func (s *Store) SnapshotAll(fn func(key, value []byte, version uint64, tombstone bool) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return store.ErrClosed
	}
	leaf := s.leftmostLeaf()
	for leaf != nil {
		for i := range leaf.keys {
			it := leaf.items[i]
			if err := fn(leaf.keys[i], it.value, it.version, it.tombstone); err != nil {
				return err
			}
		}
		leaf = leaf.next
	}
	return nil
}

// GetAll returns the item for key including tombstones; the LSM engine
// uses it to read the memtable without filtering deletions.
func (s *Store) GetAll(key []byte) (value []byte, version uint64, tombstone, found bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, 0, false, false
	}
	leaf := s.findLeaf(key, nil)
	i, ok := searchLeaf(leaf.keys, key)
	if !ok {
		return nil, 0, false, false
	}
	it := leaf.items[i]
	return store.CloneBytes(it.value), it.version, it.tombstone, true
}

// ScanAll calls fn for every item (including tombstones) with
// start <= key < end in key order; empty end means +infinity. The LSM
// engine uses it to merge memtable ranges. fn must not retain the slices.
func (s *Store) ScanAll(start, end []byte, fn func(key, value []byte, version uint64, tombstone bool) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return store.ErrClosed
	}
	leaf := s.findLeaf(start, nil)
	i, _ := searchLeaf(leaf.keys, start)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if len(end) != 0 && bytes.Compare(leaf.keys[i], end) >= 0 {
				return nil
			}
			it := leaf.items[i]
			if err := fn(leaf.keys[i], it.value, it.version, it.tombstone); err != nil {
				return err
			}
		}
		leaf = leaf.next
		i = 0
	}
	return nil
}

// Items returns the total number of items including tombstones; the LSM
// engine uses it to size memtable flushes.
func (s *Store) Items() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	leaf := s.leftmostLeaf()
	for leaf != nil {
		n += len(leaf.keys)
		leaf = leaf.next
	}
	return n
}

// Close marks the engine closed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

var _ store.Engine = (*Store)(nil)
