// Package enginetest is a conformance suite every store.Engine must pass.
// Engine packages call Run from their tests with a factory; the suite
// covers the LWW contract, tombstone semantics, concurrency safety, scans
// on ordered engines, snapshot completeness, and a randomized model-based
// check against a reference map (via testing/quick).
package enginetest

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"bespokv/internal/store"
)

// Factory creates a fresh, empty engine for one subtest. Cleanup runs via
// t.Cleanup, so factories may allocate temp directories with t.TempDir.
type Factory func(t *testing.T) store.Engine

// Run executes the full conformance suite against engines from f.
func Run(t *testing.T, f Factory) {
	t.Run("PutGet", func(t *testing.T) { testPutGet(t, f(t)) })
	t.Run("GetMissing", func(t *testing.T) { testGetMissing(t, f(t)) })
	t.Run("Overwrite", func(t *testing.T) { testOverwrite(t, f(t)) })
	t.Run("Delete", func(t *testing.T) { testDelete(t, f(t)) })
	t.Run("DeleteMissing", func(t *testing.T) { testDeleteMissing(t, f(t)) })
	t.Run("VersionLWW", func(t *testing.T) { testVersionLWW(t, f(t)) })
	t.Run("TombstoneBlocksStalePut", func(t *testing.T) { testTombstoneBlocksStalePut(t, f(t)) })
	t.Run("VersionsMonotonicAfterReplicated", func(t *testing.T) { testVersionMonotonic(t, f(t)) })
	t.Run("Len", func(t *testing.T) { testLen(t, f(t)) })
	t.Run("Snapshot", func(t *testing.T) { testSnapshot(t, f(t)) })
	t.Run("SnapshotError", func(t *testing.T) { testSnapshotError(t, f(t)) })
	t.Run("EmptyValue", func(t *testing.T) { testEmptyValue(t, f(t)) })
	t.Run("LargeValues", func(t *testing.T) { testLargeValues(t, f(t)) })
	t.Run("NoAliasing", func(t *testing.T) { testNoAliasing(t, f(t)) })
	t.Run("ClosedEngine", func(t *testing.T) { testClosed(t, f(t)) })
	t.Run("ConcurrentMixed", func(t *testing.T) { testConcurrent(t, f(t)) })
	t.Run("ModelQuick", func(t *testing.T) { testModelQuick(t, f) })
	t.Run("Scan", func(t *testing.T) { testScan(t, f(t)) })
}

func mustPut(t *testing.T, e store.Engine, k, v string, ver uint64) uint64 {
	t.Helper()
	got, err := e.Put([]byte(k), []byte(v), ver)
	if err != nil {
		t.Fatalf("Put(%q): %v", k, err)
	}
	return got
}

func mustGet(t *testing.T, e store.Engine, k string) (string, uint64, bool) {
	t.Helper()
	v, ver, ok, err := e.Get([]byte(k))
	if err != nil {
		t.Fatalf("Get(%q): %v", k, err)
	}
	return string(v), ver, ok
}

func testPutGet(t *testing.T, e store.Engine) {
	defer e.Close()
	ver := mustPut(t, e, "alpha", "1", 0)
	if ver == 0 {
		t.Fatal("assigned version must be nonzero")
	}
	v, gotVer, ok := mustGet(t, e, "alpha")
	if !ok || v != "1" || gotVer != ver {
		t.Fatalf("got (%q,%d,%v), want (1,%d,true)", v, gotVer, ok, ver)
	}
}

func testGetMissing(t *testing.T, e store.Engine) {
	defer e.Close()
	if _, _, ok := mustGet(t, e, "ghost"); ok {
		t.Fatal("missing key reported present")
	}
}

func testOverwrite(t *testing.T, e store.Engine) {
	defer e.Close()
	v1 := mustPut(t, e, "k", "old", 0)
	v2 := mustPut(t, e, "k", "new", 0)
	if v2 <= v1 {
		t.Fatalf("versions not monotonic: %d then %d", v1, v2)
	}
	v, _, ok := mustGet(t, e, "k")
	if !ok || v != "new" {
		t.Fatalf("got (%q,%v)", v, ok)
	}
	if e.Len() != 1 {
		t.Fatalf("Len=%d, want 1", e.Len())
	}
}

func testDelete(t *testing.T, e store.Engine) {
	defer e.Close()
	mustPut(t, e, "k", "v", 0)
	existed, _, err := e.Delete([]byte("k"), 0)
	if err != nil || !existed {
		t.Fatalf("Delete: existed=%v err=%v", existed, err)
	}
	if _, _, ok := mustGet(t, e, "k"); ok {
		t.Fatal("deleted key still visible")
	}
	if e.Len() != 0 {
		t.Fatalf("Len=%d after delete", e.Len())
	}
}

func testDeleteMissing(t *testing.T, e store.Engine) {
	defer e.Close()
	existed, _, err := e.Delete([]byte("never"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Fatal("delete of missing key reported existed")
	}
}

func testVersionLWW(t *testing.T, e store.Engine) {
	defer e.Close()
	mustPut(t, e, "k", "v10", 10)
	winner := mustPut(t, e, "k", "v5", 5) // stale replicated write
	if winner != 10 {
		t.Fatalf("stale write returned version %d, want winning 10", winner)
	}
	v, ver, ok := mustGet(t, e, "k")
	if !ok || v != "v10" || ver != 10 {
		t.Fatalf("stale write clobbered newer: (%q,%d,%v)", v, ver, ok)
	}
	mustPut(t, e, "k", "v12", 12)
	v, ver, _ = mustGet(t, e, "k")
	if v != "v12" || ver != 12 {
		t.Fatalf("newer write lost: (%q,%d)", v, ver)
	}
}

func testTombstoneBlocksStalePut(t *testing.T, e store.Engine) {
	defer e.Close()
	mustPut(t, e, "k", "v", 5)
	if _, _, err := e.Delete([]byte("k"), 9); err != nil {
		t.Fatal(err)
	}
	mustPut(t, e, "k", "zombie", 7) // older than the tombstone
	if _, _, ok := mustGet(t, e, "k"); ok {
		t.Fatal("stale put resurrected a deleted key")
	}
	mustPut(t, e, "k", "fresh", 11)
	v, _, ok := mustGet(t, e, "k")
	if !ok || v != "fresh" {
		t.Fatalf("newer put after tombstone lost: (%q,%v)", v, ok)
	}
}

func testVersionMonotonic(t *testing.T, e store.Engine) {
	defer e.Close()
	mustPut(t, e, "a", "x", 100) // replicated write with a high version
	ver := mustPut(t, e, "b", "y", 0)
	if ver <= 100 {
		t.Fatalf("locally assigned version %d not beyond observed 100", ver)
	}
}

func testLen(t *testing.T, e store.Engine) {
	defer e.Close()
	for i := 0; i < 10; i++ {
		mustPut(t, e, fmt.Sprintf("k%02d", i), "v", 0)
	}
	if e.Len() != 10 {
		t.Fatalf("Len=%d, want 10", e.Len())
	}
	for i := 0; i < 5; i++ {
		if _, _, err := e.Delete([]byte(fmt.Sprintf("k%02d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if e.Len() != 5 {
		t.Fatalf("Len=%d, want 5", e.Len())
	}
	mustPut(t, e, "k00", "back", 0)
	if e.Len() != 6 {
		t.Fatalf("Len=%d after re-put, want 6", e.Len())
	}
}

func testSnapshot(t *testing.T, e store.Engine) {
	defer e.Close()
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := fmt.Sprintf("val-%03d", i)
		mustPut(t, e, k, v, 0)
		want[k] = v
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("key-%03d", i*5)
		if _, _, err := e.Delete([]byte(k), 0); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	got := map[string]string{}
	err := e.Snapshot(func(kv store.KV) error {
		got[string(kv.Key)] = string(kv.Value)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d pairs, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("snapshot[%q]=%q, want %q", k, got[k], v)
		}
	}
}

func testSnapshotError(t *testing.T, e store.Engine) {
	defer e.Close()
	mustPut(t, e, "a", "1", 0)
	mustPut(t, e, "b", "2", 0)
	wantErr := fmt.Errorf("stop")
	calls := 0
	err := e.Snapshot(func(store.KV) error {
		calls++
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("Snapshot err=%v, want propagated error", err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times after error", calls)
	}
}

func testEmptyValue(t *testing.T, e store.Engine) {
	defer e.Close()
	mustPut(t, e, "empty", "", 0)
	v, _, ok := mustGet(t, e, "empty")
	if !ok || v != "" {
		t.Fatalf("empty value lost: (%q,%v)", v, ok)
	}
}

func testLargeValues(t *testing.T, e store.Engine) {
	defer e.Close()
	big := bytes.Repeat([]byte{0xab}, 1<<20)
	if _, err := e.Put([]byte("big"), big, 0); err != nil {
		t.Fatal(err)
	}
	v, _, ok, err := e.Get([]byte("big"))
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("1 MiB value corrupted: ok=%v err=%v len=%d", ok, err, len(v))
	}
}

func testNoAliasing(t *testing.T, e store.Engine) {
	defer e.Close()
	key := []byte("mutable")
	val := []byte("vvvv")
	if _, err := e.Put(key, val, 0); err != nil {
		t.Fatal(err)
	}
	key[0] = 'X'
	val[0] = 'X'
	v, _, ok := mustGet(t, e, "mutable")
	if !ok || v != "vvvv" {
		t.Fatalf("engine aliased caller buffers: (%q,%v)", v, ok)
	}
	got, _, _, _ := e.Get([]byte("mutable"))
	got[0] = 'Y'
	v, _, _ = mustGet(t, e, "mutable")
	if v != "vvvv" {
		t.Fatal("engine returned aliased internal buffer")
	}
}

func testClosed(t *testing.T, e store.Engine) {
	mustPut(t, e, "k", "v", 0)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Put([]byte("k"), []byte("v"), 0); err != store.ErrClosed {
		t.Fatalf("Put on closed: %v, want ErrClosed", err)
	}
	if _, _, _, err := e.Get([]byte("k")); err != store.ErrClosed {
		t.Fatalf("Get on closed: %v, want ErrClosed", err)
	}
	if _, _, err := e.Delete([]byte("k"), 0); err != store.ErrClosed {
		t.Fatalf("Delete on closed: %v, want ErrClosed", err)
	}
	if err := e.Snapshot(func(store.KV) error { return nil }); err != store.ErrClosed {
		t.Fatalf("Snapshot on closed: %v, want ErrClosed", err)
	}
}

func testConcurrent(t *testing.T, e store.Engine) {
	defer e.Close()
	const workers = 8
	const opsPerWorker = 300
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				k := []byte(fmt.Sprintf("k%03d", rng.Intn(100)))
				switch rng.Intn(10) {
				case 0:
					if _, _, err := e.Delete(k, 0); err != nil {
						errCh <- err
						return
					}
				case 1, 2:
					if _, _, _, err := e.Get(k); err != nil {
						errCh <- err
						return
					}
				default:
					if _, err := e.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i)), 0); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The engine must still be internally consistent: Len equals the
	// number of live snapshot pairs.
	n := 0
	if err := e.Snapshot(func(store.KV) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != e.Len() {
		t.Fatalf("Snapshot saw %d pairs but Len=%d", n, e.Len())
	}
}

// op is a randomized model operation for the quick check.
type op struct {
	Kind  uint8
	Key   uint8
	Value uint16
}

func testModelQuick(t *testing.T, f Factory) {
	check := func(ops []op) bool {
		e := f(t)
		defer e.Close()
		model := map[string]string{}
		for _, o := range ops {
			k := []byte(fmt.Sprintf("k%d", o.Key%32))
			switch o.Kind % 3 {
			case 0, 1:
				v := []byte(fmt.Sprintf("v%d", o.Value))
				if _, err := e.Put(k, v, 0); err != nil {
					return false
				}
				model[string(k)] = string(v)
			case 2:
				if _, _, err := e.Delete(k, 0); err != nil {
					return false
				}
				delete(model, string(k))
			}
		}
		if e.Len() != len(model) {
			return false
		}
		for k, want := range model {
			v, _, ok, err := e.Get([]byte(k))
			if err != nil || !ok || string(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func testScan(t *testing.T, e store.Engine) {
	defer e.Close()
	keys := []string{"ant", "bee", "cat", "dog", "eel", "fox", "gnu"}
	for i, k := range keys {
		mustPut(t, e, k, fmt.Sprintf("v%d", i), 0)
	}
	if _, _, err := e.Delete([]byte("cat"), 0); err != nil {
		t.Fatal(err)
	}
	got, err := e.Scan([]byte("bee"), []byte("fox"), 0)
	if err == store.ErrUnordered {
		t.Skipf("engine %s does not support scans", e.Name())
	}
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bee", "dog", "eel"}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d pairs, want %d: %v", len(got), len(want), scanKeys(got))
	}
	for i, kv := range got {
		if string(kv.Key) != want[i] {
			t.Fatalf("scan[%d]=%q, want %q", i, kv.Key, want[i])
		}
	}
	// Limit.
	got, err = e.Scan([]byte(""), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0].Key) != "ant" || string(got[1].Key) != "bee" {
		t.Fatalf("limited scan wrong: %v", scanKeys(got))
	}
	// Unbounded end covers everything live, in order.
	got, err = e.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, kv := range got {
		all = append(all, string(kv.Key))
	}
	if !sort.StringsAreSorted(all) || len(all) != 6 {
		t.Fatalf("full scan wrong: %v", all)
	}
}

func scanKeys(kvs []store.KV) []string {
	out := make([]string, len(kvs))
	for i, kv := range kvs {
		out[i] = string(kv.Key)
	}
	return out
}
