package ht

import (
	"errors"
	"os"
	"time"

	"bespokv/internal/store"
	"bespokv/internal/store/wal"
)

// checkpointName is the snapshot file holding the full table image; the
// WAL in dir/wal covers everything written after it.
const checkpointName = "checkpoint"

// Options configures a durable hash-table engine.
type Options struct {
	// Dir holds the checkpoint file and the wal/ subdirectory.
	Dir string
	// FS is the backing filesystem; nil means the real disk.
	FS wal.FS
	// CheckpointEvery is the floor on logged writes between full-table
	// checkpoint snapshots; the actual trigger is max(CheckpointEvery,
	// live table size) so snapshot cost amortizes to O(1) per write.
	// 0 means a default of 65536; negative disables checkpointing.
	CheckpointEvery int
	// SyncDelay widens the WAL group-commit window (see wal.Options).
	SyncDelay time.Duration
	// SegmentBytes is the WAL segment rotation threshold.
	SegmentBytes int64
}

// Open returns a durable hash-table engine: every Put/Delete is appended
// to a write-ahead log before it is applied and acked, and a periodic
// full-state checkpoint bounds recovery replay. Open itself performs that
// recovery — checkpoint load, then WAL replay with torn-tail repair.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("ht: Options.Dir required for durable mode")
	}
	if opts.FS == nil {
		opts.FS = wal.OSFS{}
	}
	ckptEvery := opts.CheckpointEvery
	if ckptEvery == 0 {
		ckptEvery = 1 << 16
	} else if ckptEvery < 0 {
		ckptEvery = 0
	}
	s := New()
	s.fs = opts.FS
	s.dir = opts.Dir
	s.ckptEvery = ckptEvery
	err := wal.ReadSnapshotFile(opts.FS, opts.Dir, checkpointName, func(body []byte) error {
		rec, err := wal.DecodeRecord(body)
		if err != nil {
			return err
		}
		s.applyRecord(rec)
		return nil
	})
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	l, err := wal.Open(wal.Options{
		Dir:          wal.Join(opts.Dir, "wal"),
		FS:           opts.FS,
		SegmentBytes: opts.SegmentBytes,
		SyncDelay:    opts.SyncDelay,
	})
	if err != nil {
		return nil, err
	}
	if err := l.Replay(func(body []byte) error {
		rec, err := wal.DecodeRecord(body)
		if err != nil {
			return err
		}
		s.applyRecord(rec)
		return nil
	}); err != nil {
		l.Close()
		return nil, err
	}
	s.wal = l
	s.recoveredVer = s.maxVer.Load()
	return s, nil
}

// applyRecord applies one recovered record through the LWW rule. Replay
// is thereby idempotent and order-insensitive, which is what makes the
// checkpoint/WAL overlap (and group-commit reordering) safe.
func (s *Store) applyRecord(r wal.Record) {
	s.observeVersion(r.Version)
	sh := s.shardFor(r.Key)
	sh.mu.Lock()
	old, exists := sh.m[string(r.Key)]
	if exists && !old.wins(r.Version) {
		sh.mu.Unlock()
		return
	}
	sh.m[string(r.Key)] = entry{value: store.CloneBytes(r.Value), version: r.Version, tombstone: r.Tombstone}
	sh.mu.Unlock()
	wasLive := exists && !old.tombstone
	if !r.Tombstone && !wasLive {
		s.live.Add(1)
	} else if r.Tombstone && wasLive {
		s.live.Add(-1)
	}
}

// logRecord appends the record to the WAL and returns with ckptMu read-
// held on success: the caller applies the write to the table and then
// calls logDone. Holding ckptMu across append+apply keeps checkpoints
// atomic — a snapshot either sees the applied write or the reset WAL
// still holds its record, never neither.
func (s *Store) logRecord(key, value []byte, version uint64, tombstone bool) error {
	s.ckptMu.RLock()
	body := wal.EncodeRecord(nil, wal.Record{Tombstone: tombstone, Version: version, Key: key, Value: value})
	if _, err := s.wal.Append(body); err != nil {
		s.ckptMu.RUnlock()
		return err
	}
	return nil
}

// logDone releases the checkpoint read-lock taken by logRecord and
// triggers a checkpoint once enough writes accumulated since the last.
// The trigger is adaptive: a snapshot costs O(table), so it waits for at
// least that many logged records (with CheckpointEvery as the floor).
// Replay stays bounded at roughly one table's worth of WAL on top of the
// checkpoint, and checkpoint bytes amortize to O(1) per write even when
// the table itself keeps growing.
func (s *Store) logDone() {
	s.ckptMu.RUnlock()
	if s.ckptEvery <= 0 {
		return
	}
	n := s.sinceCkpt.Add(1)
	trigger := int64(s.ckptEvery)
	if t := s.live.Load(); t > trigger {
		trigger = t
	}
	if n >= trigger && s.ckptRunning.CompareAndSwap(false, true) {
		_ = s.Checkpoint()
		s.ckptRunning.Store(false)
	}
}

// Checkpoint writes a full-table snapshot (tmp + fsync + rename + dir
// sync) and resets the WAL. A crash between the rename and the reset is
// safe: replaying the old WAL over the new checkpoint is idempotent.
func (s *Store) Checkpoint() error {
	if s.wal == nil {
		return errors.New("ht: not a durable store")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.sinceCkpt.Store(0)
	err := wal.WriteSnapshotFile(s.fs, s.dir, checkpointName, func(add func([]byte) error) error {
		var scratch []byte
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.RLock()
			for k, e := range sh.m {
				scratch = wal.EncodeRecord(scratch[:0], wal.Record{
					Tombstone: e.tombstone,
					Version:   e.version,
					Key:       []byte(k),
					Value:     e.value,
				})
				if err := add(scratch); err != nil {
					sh.mu.RUnlock()
					return err
				}
			}
			sh.mu.RUnlock()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return s.wal.Reset()
}

// MaxVersion returns the highest version assigned or observed.
func (s *Store) MaxVersion() uint64 { return s.maxVer.Load() }

// RecoveredVersion returns the watermark captured at the end of open-time
// recovery; 0 for in-memory stores and stores that started empty.
func (s *Store) RecoveredVersion() uint64 { return s.recoveredVer }

// SnapshotSince calls fn for every record — live or tombstone — with
// version > since. The hash table never discards tombstones, so it can
// always serve a complete delta (ok is always true).
func (s *Store) SnapshotSince(since uint64, fn func(kv store.KV, tombstone bool) error) (bool, error) {
	if s.closed.Load() {
		return false, store.ErrClosed
	}
	type rec struct {
		kv   store.KV
		tomb bool
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		batch := make([]rec, 0, len(sh.m))
		for k, e := range sh.m {
			if e.version <= since {
				continue
			}
			batch = append(batch, rec{
				kv:   store.KV{Key: []byte(k), Value: e.value, Version: e.version},
				tomb: e.tombstone,
			})
		}
		sh.mu.RUnlock()
		for _, r := range batch {
			if err := fn(r.kv, r.tomb); err != nil {
				return true, err
			}
		}
	}
	return true, nil
}

// WAL exposes the underlying log for white-box tests and benches; nil for
// in-memory stores.
func (s *Store) WAL() *wal.Log { return s.wal }

var (
	_ store.Versioned        = (*Store)(nil)
	_ store.Recovered        = (*Store)(nil)
	_ store.DeltaSnapshotter = (*Store)(nil)
)
