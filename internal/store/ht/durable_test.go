package ht

import (
	"fmt"
	"sync/atomic"
	"testing"

	"bespokv/internal/store"
	"bespokv/internal/store/enginetest"
	"bespokv/internal/store/faultfs"
	"bespokv/internal/store/wal"
)

func TestDurableConformance(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine {
		s, err := Open(Options{Dir: "ht", FS: wal.NewMemFS()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	})
}

func TestDurableConformanceSmallCheckpoints(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine {
		s, err := Open(Options{Dir: "ht", FS: wal.NewMemFS(), CheckpointEvery: 8})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	})
}

// TestCrashRestartKeepsAckedWrites is the core durability contract: every
// Put that returned survives a kill-9-style crash (freeze, close, revert
// to durable image) and restart.
func TestCrashRestartKeepsAckedWrites(t *testing.T) {
	fs := faultfs.New(7)
	s, err := Open(Options{Dir: "node", FS: fs, CheckpointEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	type w struct {
		key, val string
		ver      uint64
		deleted  bool
	}
	acked := map[string]w{}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%03d", i%40)
		val := fmt.Sprintf("v%d", i)
		if i%7 == 3 {
			_, ver, err := s.Delete([]byte(key), 0)
			if err != nil {
				t.Fatal(err)
			}
			acked[key] = w{key: key, ver: ver, deleted: true}
			continue
		}
		ver, err := s.Put([]byte(key), []byte(val), 0)
		if err != nil {
			t.Fatal(err)
		}
		acked[key] = w{key: key, val: val, ver: ver}
	}
	wantWatermark := s.MaxVersion()

	fs.Freeze()
	s.Close()
	fs.Crash()

	s2, err := Open(Options{Dir: "node", FS: fs, CheckpointEvery: 20})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close()
	if got := s2.RecoveredVersion(); got < wantWatermark {
		t.Fatalf("recovered watermark %d < acked max version %d", got, wantWatermark)
	}
	for key, want := range acked {
		val, ver, ok, err := s2.Get([]byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if want.deleted {
			if ok {
				t.Fatalf("key %s: deleted before crash but resurrected as %q", key, val)
			}
			continue
		}
		if !ok {
			t.Fatalf("key %s: acked write lost in crash", key)
		}
		if string(val) != want.val || ver != want.ver {
			t.Fatalf("key %s: got (%q, v%d), want (%q, v%d)", key, val, ver, want.val, want.ver)
		}
	}
}

// TestTornCrashRecoversConsistentPrefix crashes with a torn final record;
// the store must reopen cleanly with every acked write intact (the torn
// bytes belong to no acked write, because Append acks only after fsync).
func TestTornCrashRecoversConsistentPrefix(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		fs := faultfs.New(seed)
		s, err := Open(Options{Dir: "node", FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if _, err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"), 0); err != nil {
				t.Fatal(err)
			}
		}
		fs.Freeze()
		s.Close()
		fs.CrashTorn()

		s2, err := Open(Options{Dir: "node", FS: fs})
		if err != nil {
			t.Fatalf("seed %d: reopen after torn crash: %v", seed, err)
		}
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("k%03d", i)
			if _, _, ok, err := s2.Get([]byte(key)); err != nil || !ok {
				t.Fatalf("seed %d: acked key %s lost after torn crash (ok=%v err=%v)", seed, key, ok, err)
			}
		}
		s2.Close()
	}
}

// TestCheckpointBoundsWAL verifies checkpoints reset the log so replay
// stays O(CheckpointEvery) instead of O(history).
func TestCheckpointBoundsWAL(t *testing.T) {
	fs := wal.NewMemFS()
	s, err := Open(Options{Dir: "node", FS: fs, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 95; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i%20)), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	appends, _ := s.WAL().Stats()
	if appends != 95 {
		t.Fatalf("wal appends = %d, want 95", appends)
	}
	s.Close()

	// Reopen: replay must see only the post-checkpoint tail, and state
	// must still be complete.
	s2, err := Open(Options{Dir: "node", FS: fs, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 20 {
		t.Fatalf("Len after checkpointed reopen = %d, want 20", got)
	}
	names, err := fs.ReadDir(wal.Join("node", "wal"))
	if err != nil {
		t.Fatal(err)
	}
	// 95 writes with a checkpoint every 10 leaves at most 10 records (one
	// active segment) in the log.
	if len(names) > 1 {
		t.Fatalf("wal has %d segments after checkpoints, want 1: %v", len(names), names)
	}
}

// TestCrashBetweenCheckpointAndReset simulates the crash window after the
// checkpoint rename but before the WAL reset: replaying the stale WAL over
// the fresh checkpoint must be a no-op thanks to LWW idempotency.
func TestCrashBetweenCheckpointAndReset(t *testing.T) {
	fs := faultfs.New(3)
	s, err := Open(Options{Dir: "node", FS: fs, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Manual checkpoint, then crash with the WAL still holding all 30
	// records (faultfs keeps the pre-reset WAL durable only up to what was
	// fsynced — the appends were, the removal may not be).
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fs.Freeze()
	s.Close()
	fs.Crash()

	s2, err := Open(Options{Dir: "node", FS: fs, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 30 {
		t.Fatalf("Len = %d, want 30", got)
	}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("k%02d", i)
		val, _, ok, _ := s2.Get([]byte(key))
		if !ok || string(val) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %s = (%q, %v) after checkpoint-window crash", key, val, ok)
		}
	}
}

func TestSnapshotSinceDelta(t *testing.T) {
	s, err := Open(Options{Dir: "ht", FS: wal.NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	mark := s.MaxVersion()
	if _, err := s.Put([]byte("k3"), []byte("new"), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Delete([]byte("k5"), 0); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{} // key -> tombstone
	ok, err := s.SnapshotSince(mark, func(kv store.KV, tomb bool) error {
		got[string(kv.Key)] = tomb
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("SnapshotSince: ok=%v err=%v", ok, err)
	}
	if len(got) != 2 || got["k3"] || !got["k5"] {
		t.Fatalf("delta = %v, want k3 live + k5 tombstone only", got)
	}
}

// benchParallelPut drives concurrent unique-key writes — the shape that
// lets WAL group commit amortize one fsync over many appenders.
func benchParallelPut(b *testing.B, s store.Engine) {
	b.Helper()
	var seq atomic.Uint64
	val := []byte("benchmark-value-0123456789abcdef")
	b.SetParallelism(16) // concurrent writers even on one proc: the group-commit shape
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := []byte(fmt.Sprintf("key-%012d", seq.Add(1)))
			if _, err := s.Put(k, val, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPutMemoryParallel is the in-memory baseline for the durable
// comparison below (same workload, no WAL).
func BenchmarkPutMemoryParallel(b *testing.B) {
	s := New()
	defer s.Close()
	benchParallelPut(b, s)
}

// BenchmarkPutDurableParallel measures the WAL-ed hash table under
// concurrent writers over faultfs (in-process, so the number isolates the
// group-commit machinery, not a device's fsync latency). The acceptance
// bar is within ~2x of BenchmarkPutMemoryParallel.
func BenchmarkPutDurableParallel(b *testing.B) {
	s, err := Open(Options{Dir: "bench", FS: faultfs.New(1)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	benchParallelPut(b, s)
}
