// Package ht implements the tHT datalet engine: a striped in-memory hash
// table. It is the fastest engine for point operations and the default
// backend in the paper's scalability experiments (Fig. 7).
package ht

import (
	"bytes"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"

	"bespokv/internal/store"
	"bespokv/internal/store/wal"
)

// shardCount stripes the table to reduce lock contention; a power of two so
// the hash can be masked.
const shardCount = 64

type entry struct {
	value     []byte
	version   uint64
	tombstone bool
}

type shard struct {
	mu sync.RWMutex
	m  map[string]entry
}

// Store is a striped hash table engine: in-memory when built with New,
// write-ahead-logged with checkpoint snapshots when built with Open.
type Store struct {
	shards  [shardCount]shard
	seed    maphash.Seed
	maxVer  atomic.Uint64
	live    atomic.Int64
	closed  atomic.Bool
	nameStr string

	// Durable mode (nil/zero for in-memory stores). ckptMu is read-held
	// across each WAL append + table apply so Checkpoint (write-held)
	// sees an atomic boundary between snapshotted and logged writes.
	wal          *wal.Log
	fs           wal.FS
	dir          string
	ckptEvery    int
	ckptMu       sync.RWMutex
	sinceCkpt    atomic.Int64
	ckptRunning  atomic.Bool
	recoveredVer uint64
}

// New returns an empty hash-table engine.
func New() *Store {
	s := &Store{seed: maphash.MakeSeed(), nameStr: "ht"}
	for i := range s.shards {
		s.shards[i].m = make(map[string]entry)
	}
	return s
}

// Name reports "ht".
func (s *Store) Name() string { return s.nameStr }

func (s *Store) shardFor(key []byte) *shard {
	h := maphash.Bytes(s.seed, key)
	return &s.shards[h&(shardCount-1)]
}

// nextVersion assigns a version strictly greater than any seen so far.
func (s *Store) nextVersion() uint64 {
	return s.maxVer.Add(1)
}

// observeVersion keeps the local counter ahead of replicated versions.
func (s *Store) observeVersion(v uint64) {
	for {
		cur := s.maxVer.Load()
		if v <= cur || s.maxVer.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Put stores value under key with LWW semantics (see store.Engine). In
// durable mode the record is fsynced to the WAL before it is applied, so
// a returned version implies the write survives a crash.
func (s *Store) Put(key, value []byte, version uint64) (uint64, error) {
	if s.closed.Load() {
		return 0, store.ErrClosed
	}
	if version == 0 {
		version = s.nextVersion()
	} else {
		s.observeVersion(version)
	}
	if s.wal != nil {
		if err := s.logRecord(key, value, version, false); err != nil {
			return 0, err
		}
		defer s.logDone()
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	old, exists := sh.m[string(key)]
	if exists && !old.wins(version) {
		sh.mu.Unlock()
		return old.version, nil
	}
	sh.m[string(key)] = entry{value: store.CloneBytes(value), version: version}
	sh.mu.Unlock()
	if !exists || old.tombstone {
		s.live.Add(1)
	}
	return version, nil
}

func (e entry) wins(v uint64) bool { return v >= e.version }

// Get returns the live value for key.
func (s *Store) Get(key []byte) ([]byte, uint64, bool, error) {
	if s.closed.Load() {
		return nil, 0, false, store.ErrClosed
	}
	sh := s.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.m[string(key)]
	sh.mu.RUnlock()
	if !ok || e.tombstone {
		return nil, 0, false, nil
	}
	return store.CloneBytes(e.value), e.version, true, nil
}

// Delete writes a tombstone for key under LWW semantics.
func (s *Store) Delete(key []byte, version uint64) (bool, uint64, error) {
	if s.closed.Load() {
		return false, 0, store.ErrClosed
	}
	if version == 0 {
		version = s.nextVersion()
	} else {
		s.observeVersion(version)
	}
	if s.wal != nil {
		if err := s.logRecord(key, nil, version, true); err != nil {
			return false, 0, err
		}
		defer s.logDone()
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	old, exists := sh.m[string(key)]
	if exists && !old.wins(version) {
		sh.mu.Unlock()
		return !old.tombstone, old.version, nil
	}
	sh.m[string(key)] = entry{version: version, tombstone: true}
	sh.mu.Unlock()
	existed := exists && !old.tombstone
	if existed {
		s.live.Add(-1)
	}
	return existed, version, nil
}

// Scan returns live pairs with start <= key < end in key order, up to
// limit. The table keeps no sorted structure, so the scan is
// sorted-at-snapshot: matching pairs are collected stripe by stripe under
// read locks and sorted afterwards. O(n log n) per call — built for the
// migration/backfill paths, which walk the keyspace in bounded chunks, not
// for hot-path range reads (the ordered engines serve those).
func (s *Store) Scan(start, end []byte, limit int) ([]store.KV, error) {
	if s.closed.Load() {
		return nil, store.ErrClosed
	}
	var out []store.KV
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			if e.tombstone || !store.InRange([]byte(k), start, end) {
				continue
			}
			out = append(out, store.KV{Key: []byte(k), Value: e.value, Version: e.version})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Key, out[j].Key) < 0 })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int { return int(s.live.Load()) }

// Snapshot calls fn for every live pair in shard order.
func (s *Store) Snapshot(fn func(store.KV) error) error {
	if s.closed.Load() {
		return store.ErrClosed
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		// Copy the shard's live pairs so fn runs without the lock held.
		batch := make([]store.KV, 0, len(sh.m))
		for k, e := range sh.m {
			if e.tombstone {
				continue
			}
			batch = append(batch, store.KV{Key: []byte(k), Value: e.value, Version: e.version})
		}
		sh.mu.RUnlock()
		for _, kv := range batch {
			if err := fn(kv); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close marks the engine closed; in durable mode it fsyncs and closes
// the WAL (every acked write is already durable, so close adds nothing
// beyond releasing the files).
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.wal != nil {
		// Wait out in-flight append+apply pairs so the WAL files are not
		// yanked from under them.
		s.ckptMu.Lock()
		defer s.ckptMu.Unlock()
		return s.wal.Close()
	}
	return nil
}

var _ store.Engine = (*Store)(nil)
