package ht

import (
	"testing"

	"bespokv/internal/store"
	"bespokv/internal/store/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine { return New() })
}

func TestScanUnsupported(t *testing.T) {
	s := New()
	defer s.Close()
	if _, err := s.Scan(nil, nil, 0); err != store.ErrUnordered {
		t.Fatalf("got %v, want ErrUnordered", err)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "ht" {
		t.Fatal("wrong name")
	}
}

func BenchmarkPut(b *testing.B) {
	s := New()
	defer s.Close()
	key := []byte("benchmark-key")
	val := []byte("benchmark-value-0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		s.Put(key, val, 0)
	}
}

func BenchmarkGet(b *testing.B) {
	s := New()
	defer s.Close()
	key := []byte("benchmark-key")
	s.Put(key, []byte("benchmark-value"), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(key)
	}
}
