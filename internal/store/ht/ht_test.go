package ht

import (
	"bytes"
	"fmt"
	"testing"

	"bespokv/internal/store"
	"bespokv/internal/store/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine { return New() })
}

// TestScanChunkedWalk iterates the whole table the way the migration
// streamer does — bounded chunks with a resume cursor just past the last
// key — and checks the union is exactly the live key set, each key once.
func TestScanChunkedWalk(t *testing.T) {
	s := New()
	defer s.Close()
	const n = 1000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		if _, err := s.Put(key, []byte(fmt.Sprintf("val-%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a stripe; tombstones must not surface.
	for i := 0; i < n; i += 10 {
		if _, _, err := s.Delete([]byte(fmt.Sprintf("key-%04d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	var cursor []byte
	const chunk = 64
	for {
		kvs, err := s.Scan(cursor, nil, chunk)
		if err != nil {
			t.Fatal(err)
		}
		for i, kv := range kvs {
			if i > 0 && bytes.Compare(kvs[i-1].Key, kv.Key) >= 0 {
				t.Fatalf("chunk out of order at %q", kv.Key)
			}
			if seen[string(kv.Key)] {
				t.Fatalf("key %q returned twice", kv.Key)
			}
			seen[string(kv.Key)] = true
		}
		if len(kvs) < chunk {
			break
		}
		cursor = append(append(cursor[:0], kvs[len(kvs)-1].Key...), 0)
	}
	if want := n - n/10; len(seen) != want {
		t.Fatalf("walk saw %d keys, want %d", len(seen), want)
	}
	for k := range seen {
		var i int
		fmt.Sscanf(k, "key-%d", &i)
		if i%10 == 0 {
			t.Fatalf("deleted key %q surfaced in scan", k)
		}
	}
}

func TestScanClosed(t *testing.T) {
	s := New()
	s.Close()
	if _, err := s.Scan(nil, nil, 0); err != store.ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "ht" {
		t.Fatal("wrong name")
	}
}

func BenchmarkPut(b *testing.B) {
	s := New()
	defer s.Close()
	key := []byte("benchmark-key")
	val := []byte("benchmark-value-0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		s.Put(key, val, 0)
	}
}

func BenchmarkGet(b *testing.B) {
	s := New()
	defer s.Close()
	key := []byte("benchmark-key")
	s.Put(key, []byte("benchmark-value"), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(key)
	}
}
