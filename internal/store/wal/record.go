package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Record is the engine-level WAL payload: one versioned put or tombstone.
// The engines replay records through their LWW apply path, so replay is
// idempotent and order-insensitive across checkpoint/log overlap.
type Record struct {
	Tombstone bool
	Version   uint64
	Key       []byte
	Value     []byte
}

const flagTombstone = 0x1

// EncodeRecord appends r's wire form to dst and returns the result:
// flags byte, uvarint version, uvarint key length, key, uvarint value
// length, value.
func EncodeRecord(dst []byte, r Record) []byte {
	var flags byte
	if r.Tombstone {
		flags |= flagTombstone
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, r.Version)
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Value)))
	dst = append(dst, r.Value...)
	return dst
}

// DecodeRecord parses a record body produced by EncodeRecord. The returned
// slices alias body.
func DecodeRecord(body []byte) (Record, error) {
	var r Record
	if len(body) < 1 {
		return r, errors.New("wal: record too short")
	}
	r.Tombstone = body[0]&flagTombstone != 0
	rest := body[1:]
	ver, n := binary.Uvarint(rest)
	if n <= 0 {
		return r, errors.New("wal: bad record version")
	}
	r.Version = ver
	rest = rest[n:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return r, errors.New("wal: bad record key")
	}
	rest = rest[n:]
	r.Key = rest[:klen]
	rest = rest[klen:]
	vlen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < vlen {
		return r, errors.New("wal: bad record value")
	}
	rest = rest[n:]
	r.Value = rest[:vlen]
	if uint64(len(rest)) != vlen {
		return r, errors.New("wal: trailing garbage in record")
	}
	return r, nil
}

// Snapshot files share the WAL's frame format behind a magic header and a
// count trailer, giving checkpoints the same torn/corrupt detection as the
// log itself. Layout: magic, then one frame per body, then a trailer frame
// whose body is the u64 frame count.
var snapMagic = []byte("BKVSNAP1")

// WriteSnapshotFile atomically writes a snapshot named name in dir: the
// content goes to name.tmp, is fsynced, renamed over name, and the rename
// is made durable with a directory sync. emit receives an add callback to
// append one frame per record body.
func WriteSnapshotFile(fs FS, dir, name string, emit func(add func(body []byte) error) error) error {
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return fmt.Errorf("wal: snapshot mkdir: %w", err)
	}
	tmp := Join(dir, name+".tmp")
	f, err := fs.OpenFile(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot create: %w", err)
	}
	// A leftover tmp from an earlier crash may be longer than what we
	// write; truncate so stale bytes can't survive past the trailer.
	if err := f.Truncate(0); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot truncate: %w", err)
	}
	off := int64(0)
	write := func(p []byte) error {
		if _, err := f.WriteAt(p, off); err != nil {
			return err
		}
		off += int64(len(p))
		return nil
	}
	if err := write(snapMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	var count uint64
	var hdr [frameHeaderSize]byte
	add := func(body []byte) error {
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
		if err := write(hdr[:]); err != nil {
			return err
		}
		if err := write(body); err != nil {
			return err
		}
		count++
		return nil
	}
	if err := emit(add); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot emit: %w", err)
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], count)
	if err := add(trailer[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot trailer: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := fs.Rename(tmp, Join(dir, name)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: snapshot sync dir: %w", err)
	}
	return nil
}

// ErrSnapshotCorrupt marks a snapshot that fails magic, CRC, or trailer
// validation. Callers treat it like an absent snapshot plus a loud log
// line: the WAL still holds everything since the previous good checkpoint
// only if the snapshot never superseded it, so engines fail open loudly.
var ErrSnapshotCorrupt = errors.New("wal: snapshot corrupt")

// ReadSnapshotFile streams the frames of a snapshot written by
// WriteSnapshotFile to fn. A missing file returns os.ErrNotExist; a file
// with a bad magic, bad CRC, torn tail, or frame-count mismatch returns
// ErrSnapshotCorrupt.
func ReadSnapshotFile(fs FS, dir, name string, fn func(body []byte) error) error {
	if fs == nil {
		fs = OSFS{}
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: snapshot list: %w", err)
	}
	found := false
	for _, n := range names {
		if n == name {
			found = true
			break
		}
	}
	if !found {
		return os.ErrNotExist
	}
	f, err := fs.OpenFile(Join(dir, name))
	if err != nil {
		return fmt.Errorf("wal: snapshot open: %w", err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return fmt.Errorf("wal: snapshot size: %w", err)
	}
	magic := make([]byte, len(snapMagic))
	if size < int64(len(snapMagic)) {
		return ErrSnapshotCorrupt
	}
	if _, err := f.ReadAt(magic, 0); err != nil {
		return fmt.Errorf("wal: snapshot read: %w", err)
	}
	if string(magic) != string(snapMagic) {
		return ErrSnapshotCorrupt
	}
	// Collect frames first: fn must not observe a partial snapshot that
	// later turns out to be torn.
	var frames [][]byte
	off := int64(len(snapMagic))
	var hdr [frameHeaderSize]byte
	for off+frameHeaderSize <= size {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return fmt.Errorf("wal: snapshot read: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		end := off + frameHeaderSize + int64(n)
		if end > size {
			return ErrSnapshotCorrupt
		}
		body := make([]byte, n)
		if n > 0 {
			if _, err := f.ReadAt(body, off+frameHeaderSize); err != nil {
				return fmt.Errorf("wal: snapshot read: %w", err)
			}
		}
		if crc32.Checksum(body, crcTable) != sum {
			return ErrSnapshotCorrupt
		}
		frames = append(frames, body)
		off = end
	}
	if off != size || len(frames) == 0 {
		return ErrSnapshotCorrupt
	}
	trailer := frames[len(frames)-1]
	frames = frames[:len(frames)-1]
	if len(trailer) != 8 || binary.LittleEndian.Uint64(trailer) != uint64(len(frames)) {
		return ErrSnapshotCorrupt
	}
	for _, body := range frames {
		if err := fn(body); err != nil {
			return err
		}
	}
	return nil
}
