package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var got [][]byte
	if err := l.Replay(func(body []byte) error {
		got = append(got, append([]byte(nil), body...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	var want [][]byte
	for i := 0; i < 100; i++ {
		body := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, body)
		if _, err := l.Append(body); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	l2.Close()
}

func TestTornTailTruncatedOnReplay(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("good-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Append a torn frame by hand: a header promising more bytes than exist.
	f, err := fs.OpenFile(Join("wal", "00000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1000)
	binary.LittleEndian.PutUint32(hdr[4:8], 0xdeadbeef)
	if _, err := f.WriteAt(hdr[:], size); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("partial body"), size+frameHeaderSize); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2)
	if len(got) != 10 {
		t.Fatalf("replayed %d records after torn tail, want 10", len(got))
	}
	// The tail must be gone: new appends land after the truncated prefix
	// and a third open sees exactly 11 records.
	if _, err := l2.Append([]byte("post-repair")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	got = replayAll(t, l3)
	if len(got) != 11 || string(got[10]) != "post-repair" {
		t.Fatalf("after repair+append: %d records (last %q), want 11 ending in post-repair", len(got), got[len(got)-1])
	}
	l3.Close()
}

func TestCorruptMidSegmentTruncates(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	var offsets []int64
	var off int64
	for i := 0; i < 10; i++ {
		body := []byte(fmt.Sprintf("rec-%d", i))
		offsets = append(offsets, off)
		off += frameHeaderSize + int64(len(body))
		if _, err := l.Append(body); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip a byte in record 6's body.
	f, _ := fs.OpenFile(Join("wal", "00000001.wal"))
	var b [1]byte
	pos := offsets[6] + frameHeaderSize
	if _, err := f.ReadAt(b[:], pos); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], pos); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2)
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want 6 (truncate at first corrupt record)", len(got))
	}
	l2.Close()
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	const writers = 16
	const perWriter = 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%02d-%03d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	appends, syncs := l.Stats()
	if appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", appends, writers*perWriter)
	}
	if syncs == 0 || syncs > appends {
		t.Fatalf("syncs = %d out of range (0, %d]", syncs, appends)
	}
	t.Logf("group commit: %d appends over %d syncs (batch ~%.1f)", appends, syncs, float64(appends)/float64(syncs))
	l.Close()

	l2, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2)
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d, want %d", len(got), writers*perWriter)
	}
	seen := map[string]bool{}
	for _, b := range got {
		if seen[string(b)] {
			t.Fatalf("duplicate record %q", b)
		}
		seen[string(b)] = true
	}
	l2.Close()
}

func TestRotateAndDropThrough(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("seg1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("seg2-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.Segments(); n != 2 {
		t.Fatalf("segments = %d, want 2", n)
	}
	if err := l.DropThrough(sealed); err != nil {
		t.Fatal(err)
	}
	if n := l.Segments(); n != 1 {
		t.Fatalf("segments after drop = %d, want 1", n)
	}
	l.Close()

	l2, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2)
	if len(got) != 5 || string(got[0]) != "seg2-0" {
		t.Fatalf("after drop: %d records starting %q, want 5 starting seg2-0", len(got), got[0])
	}
	l2.Close()
}

func TestAutomaticRotation(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.Segments(); n < 2 {
		t.Fatalf("segments = %d, want rotation to have produced several", n)
	}
	l.Close()
	l2, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2); len(got) != 20 {
		t.Fatalf("replayed %d, want 20", len(got))
	}
	l2.Close()
}

func TestReset(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	for i := 0; i < 8; i++ {
		if _, err := l.Append([]byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	first := l.ActiveSegment()
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.ActiveSegment() <= first {
		t.Fatalf("segment id did not advance across Reset: %d -> %d", first, l.ActiveSegment())
	}
	if _, err := l.Append([]byte("new")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "new" {
		t.Fatalf("after reset got %d records %q, want just new", len(got), got)
	}
	l2.Close()
}

func TestRecordCodecRoundTrip(t *testing.T) {
	cases := []Record{
		{Key: []byte("k"), Value: []byte("v"), Version: 1},
		{Key: []byte("key"), Value: nil, Version: 1 << 40, Tombstone: true},
		{Key: []byte{}, Value: []byte{}, Version: 0},
		{Key: bytes.Repeat([]byte("x"), 300), Value: bytes.Repeat([]byte("y"), 5000), Version: 77},
	}
	for i, r := range cases {
		body := EncodeRecord(nil, r)
		got, err := DecodeRecord(body)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Tombstone != r.Tombstone || got.Version != r.Version ||
			!bytes.Equal(got.Key, r.Key) || !bytes.Equal(got.Value, r.Value) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, r)
		}
	}
	for _, bad := range [][]byte{nil, {0}, {0, 0x80}, {0, 1, 5, 'a'}} {
		if _, err := DecodeRecord(bad); err == nil {
			t.Fatalf("DecodeRecord(%v) accepted garbage", bad)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	fs := NewMemFS()
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	err := WriteSnapshotFile(fs, "d", "checkpoint", func(add func([]byte) error) error {
		for _, b := range want {
			if err := add(b); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	err = ReadSnapshotFile(fs, "d", "checkpoint", func(body []byte) error {
		got = append(got, append([]byte(nil), body...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d = %q want %q", i, got[i], want[i])
		}
	}
}

func TestSnapshotMissing(t *testing.T) {
	err := ReadSnapshotFile(NewMemFS(), "d", "none", func([]byte) error { return nil })
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

func TestSnapshotCorruptDetected(t *testing.T) {
	fs := NewMemFS()
	if err := WriteSnapshotFile(fs, "d", "snap", func(add func([]byte) error) error {
		return add([]byte("payload"))
	}); err != nil {
		t.Fatal(err)
	}
	// Torn tail: shave bytes off the end.
	f, _ := fs.OpenFile(Join("d", "snap"))
	size, _ := f.Size()
	if err := f.Truncate(size - 3); err != nil {
		t.Fatal(err)
	}
	err := ReadSnapshotFile(fs, "d", "snap", func([]byte) error { return nil })
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("torn snapshot: err = %v, want ErrSnapshotCorrupt", err)
	}
	// Bad magic.
	if _, err := f.WriteAt([]byte("XX"), 0); err != nil {
		t.Fatal(err)
	}
	err = ReadSnapshotFile(fs, "d", "snap", func([]byte) error { return nil })
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrSnapshotCorrupt", err)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: Join(dir, "wal")})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("os-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, err := Open(Options{Dir: Join(dir, "wal")})
	if err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2); len(got) != 10 {
		t.Fatalf("replayed %d, want 10", len(got))
	}
	l2.Close()
}

func TestClosedErrors(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v", err)
	}
	if _, err := l.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rotate after close: %v", err)
	}
	if err := l.Reset(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reset after close: %v", err)
	}
}
