// Package wal implements a CRC-framed, segmented write-ahead log with
// group commit. Records are opaque bodies framed as
//
//	[u32 len][u32 crc32c(body)][body]
//
// appended to numbered segment files (00000001.wal, ...). Append returns
// only after the record is fsynced; concurrent appenders are batched under
// a single fsync (group commit), so the per-write sync cost amortises
// across the commit window. On open, Replay scans every segment in order
// and truncates the first torn or corrupt frame it finds — everything
// before it is the durable prefix, everything after is discarded.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	frameHeaderSize = 8 // u32 length + u32 crc
	segSuffix       = ".wal"

	// DefaultSegmentBytes is the rotation threshold when Options leaves it 0.
	DefaultSegmentBytes = 4 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// Options configures a Log.
type Options struct {
	// Dir holds the segment files. Created if missing.
	Dir string
	// FS is the backing filesystem; nil means OSFS.
	FS FS
	// SegmentBytes rotates the active segment once it grows past this
	// size. 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// SyncDelay optionally widens the group-commit window: the syncing
	// appender sleeps this long before fsyncing so more concurrent
	// appends pile into the same sync. 0 relies on natural batching
	// (everything that arrives while a sync is in flight shares the
	// next one), which is the right default for in-process use.
	SyncDelay time.Duration
}

type segment struct {
	id   uint64
	f    File
	size int64
}

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use; Replay must be called (once) before the first Append.
type Log struct {
	opts Options
	fs   FS

	mu       sync.Mutex // guards segments, active segment writes, closed
	segs     []*segment // sorted by id; last is active
	nextID   uint64
	closed   bool
	replayed bool

	// Group commit state. appendSeq numbers completed WriteAt calls;
	// syncedSeq is the highest appendSeq covered by a finished fsync.
	// One goroutine at a time syncs; the rest wait on cond.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	appendSeq uint64
	syncedSeq uint64
	syncing   bool
	syncErr   error // sticky: a failed fsync poisons the log

	// stats
	appends uint64
	syncs   uint64
}

// Open opens (or creates) the log in opts.Dir. Call Replay before Append.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir required")
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	fs := opts.FS
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", opts.Dir, err)
	}
	names, err := fs.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", opts.Dir, err)
	}
	l := &Log{opts: opts, fs: fs, nextID: 1}
	l.syncCond = sync.NewCond(&l.syncMu)
	var ids []uint64
	for _, name := range names {
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f, err := fs.OpenFile(l.segPath(id))
		if err != nil {
			l.closeSegsLocked()
			return nil, fmt.Errorf("wal: open segment %d: %w", id, err)
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			l.closeSegsLocked()
			return nil, fmt.Errorf("wal: size segment %d: %w", id, err)
		}
		l.segs = append(l.segs, &segment{id: id, f: f, size: size})
		if id >= l.nextID {
			l.nextID = id + 1
		}
	}
	if len(l.segs) == 0 {
		if err := l.openFreshSegmentLocked(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (l *Log) segPath(id uint64) string {
	return Join(l.opts.Dir, fmt.Sprintf("%08d%s", id, segSuffix))
}

func (l *Log) openFreshSegmentLocked() error {
	id := l.nextID
	l.nextID++
	f, err := l.fs.OpenFile(l.segPath(id))
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", id, err)
	}
	l.segs = append(l.segs, &segment{id: id, f: f})
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

func (l *Log) closeSegsLocked() {
	for _, s := range l.segs {
		s.f.Close()
	}
	l.segs = nil
}

// Replay calls fn for every durable record in segment order and repairs
// torn tails: the first frame that is short or fails its CRC marks the end
// of the durable prefix in that segment — the segment is truncated there
// and the scan continues with the next segment. fn errors abort the replay.
func (l *Log) Replay(fn func(body []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for _, s := range l.segs {
		valid, err := replaySegment(s.f, s.size, fn)
		if err != nil {
			return err
		}
		if valid < s.size {
			if err := s.f.Truncate(valid); err != nil {
				return fmt.Errorf("wal: truncate torn tail of segment %d: %w", s.id, err)
			}
			s.size = valid
		}
	}
	l.replayed = true
	return nil
}

// replaySegment scans frames from offset 0 and returns the end of the
// valid prefix. Corrupt or torn frames stop the scan without error; only
// fn failures and read errors below the known size propagate.
func replaySegment(f File, size int64, fn func(body []byte) error) (int64, error) {
	var off int64
	var hdr [frameHeaderSize]byte
	for off+frameHeaderSize <= size {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return off, fmt.Errorf("wal: read frame header at %d: %w", off, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		end := off + frameHeaderSize + int64(n)
		if end > size {
			break // torn: body extends past the durable data
		}
		body := make([]byte, n)
		if n > 0 {
			if _, err := f.ReadAt(body, off+frameHeaderSize); err != nil {
				return off, fmt.Errorf("wal: read frame body at %d: %w", off, err)
			}
		}
		if crc32.Checksum(body, crcTable) != sum {
			break // corrupt: truncate here
		}
		if err := fn(body); err != nil {
			return off, err
		}
		off = end
	}
	return off, nil
}

// Append frames body, writes it to the active segment, and returns once
// an fsync covering the write has completed, reporting which segment the
// record landed in. Concurrent Appends share syncs (group commit).
func (l *Log) Append(body []byte) (uint64, error) {
	frame := make([]byte, frameHeaderSize+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
	copy(frame[frameHeaderSize:], body)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	active := l.segs[len(l.segs)-1]
	segID := active.id
	off := active.size
	if _, err := active.f.WriteAt(frame, off); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	active.size = off + int64(len(frame))
	l.appends++
	rotate := active.size >= l.opts.SegmentBytes
	if rotate {
		// Seal the outgoing segment: fsync it (covering this record and
		// every earlier one) and open a fresh active segment. Done under
		// mu so no append can land in the sealed segment afterwards.
		if err := l.sealActiveLocked(); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	l.syncMu.Lock()
	l.appendSeq++
	seq := l.appendSeq
	if rotate {
		// The seal's fsync covered everything appended so far.
		if seq > l.syncedSeq {
			l.syncedSeq = seq
		}
		l.syncCond.Broadcast()
	}
	l.syncMu.Unlock()
	l.mu.Unlock()
	if rotate {
		return segID, nil
	}
	return segID, l.waitSynced(seq)
}

// sealActiveLocked fsyncs the active segment and opens a fresh one.
// Caller holds mu.
func (l *Log) sealActiveLocked() error {
	active := l.segs[len(l.segs)-1]
	if err := active.f.Sync(); err != nil {
		l.poisonSync(err)
		return fmt.Errorf("wal: seal segment %d: %w", active.id, err)
	}
	l.syncs++
	return l.openFreshSegmentLocked()
}

// poisonSync records a failed fsync; all pending and future appends fail.
func (l *Log) poisonSync(err error) {
	l.syncMu.Lock()
	if l.syncErr == nil {
		l.syncErr = err
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
}

// waitSynced blocks until a completed fsync covers seq, becoming the
// syncer itself when none is in flight.
//
// The syncer fsyncs whatever segment is active *after* it reads covered:
// every append with seq' <= covered lives either in that segment or in a
// segment sealed earlier — and sealing fsyncs — so one fsync of the
// current active segment makes the whole prefix durable.
func (l *Log) waitSynced(seq uint64) error {
	l.syncMu.Lock()
	for {
		if l.syncErr != nil {
			err := l.syncErr
			l.syncMu.Unlock()
			return fmt.Errorf("wal: sync: %w", err)
		}
		if l.syncedSeq >= seq {
			l.syncMu.Unlock()
			return nil
		}
		if !l.syncing {
			break
		}
		l.syncCond.Wait()
	}
	// Become the syncer. Everything appended up to now rides this fsync.
	l.syncing = true
	l.syncMu.Unlock()

	if d := l.opts.SyncDelay; d > 0 {
		time.Sleep(d) // widen the commit window: more appends share the fsync
	}
	l.syncMu.Lock()
	covered := l.appendSeq
	l.syncMu.Unlock()

	l.mu.Lock()
	var f File
	var closed bool
	if l.closed || len(l.segs) == 0 {
		closed = true
	} else {
		f = l.segs[len(l.segs)-1].f
	}
	l.mu.Unlock()

	var err error
	if closed {
		err = ErrClosed
	} else {
		err = f.Sync()
	}

	l.syncMu.Lock()
	l.syncing = false
	if err != nil {
		if l.syncErr == nil {
			l.syncErr = err
		}
		l.syncCond.Broadcast()
		l.syncMu.Unlock()
		return fmt.Errorf("wal: sync: %w", err)
	}
	if covered > l.syncedSeq {
		l.syncedSeq = covered
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()

	l.mu.Lock()
	l.syncs++
	l.mu.Unlock()
	return nil
}

// Rotate seals the active segment and starts a new one, returning the
// sealed segment's id. Engines use it to tie a memtable seal to a log
// boundary: once the memtable is flushed, DropThrough(id) frees the tail.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	sealed := l.segs[len(l.segs)-1].id
	if err := l.sealActiveLocked(); err != nil {
		return 0, err
	}
	l.syncMu.Lock()
	if l.appendSeq > l.syncedSeq {
		l.syncedSeq = l.appendSeq
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return sealed, nil
}

// DropThrough removes all sealed segments with id <= segID. The active
// segment is never removed.
func (l *Log) DropThrough(segID uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	kept := l.segs[:0]
	removed := false
	for i, s := range l.segs {
		if i == len(l.segs)-1 || s.id > segID {
			kept = append(kept, s)
			continue
		}
		s.f.Close()
		if err := l.fs.Remove(l.segPath(s.id)); err != nil {
			return fmt.Errorf("wal: drop segment %d: %w", s.id, err)
		}
		removed = true
	}
	l.segs = kept
	if removed {
		if err := l.fs.SyncDir(l.opts.Dir); err != nil {
			return fmt.Errorf("wal: sync dir: %w", err)
		}
	}
	return nil
}

// Reset discards every record: all segments are removed and a fresh active
// segment is created. Used after a checkpoint supersedes the log. Segment
// ids keep increasing across Reset so replay order stays unambiguous.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for _, s := range l.segs {
		s.f.Close()
		if err := l.fs.Remove(l.segPath(s.id)); err != nil {
			return fmt.Errorf("wal: reset remove segment %d: %w", s.id, err)
		}
	}
	l.segs = nil
	if err := l.openFreshSegmentLocked(); err != nil {
		return err
	}
	l.syncMu.Lock()
	if l.appendSeq > l.syncedSeq {
		l.syncedSeq = l.appendSeq
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return nil
}

// ActiveSegment returns the id of the segment new appends land in.
func (l *Log) ActiveSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return 0
	}
	return l.segs[len(l.segs)-1].id
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Stats reports lifetime append and fsync counts; their ratio is the
// realised group-commit batch size.
func (l *Log) Stats() (appends, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// Sync forces an fsync of the active segment, covering every completed
// append. Used by engines on clean shutdown.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	active := l.segs[len(l.segs)-1]
	err := active.f.Sync()
	if err == nil {
		l.syncs++
	}
	l.mu.Unlock()
	if err != nil {
		l.poisonSync(err)
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.syncMu.Lock()
	if l.appendSeq > l.syncedSeq {
		l.syncedSeq = l.appendSeq
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return nil
}

// Close fsyncs the active segment and closes all files.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	active := l.segs[len(l.segs)-1]
	err := active.f.Sync()
	l.closed = true
	l.closeSegsLocked()
	l.syncMu.Lock()
	if l.syncErr == nil {
		l.syncErr = ErrClosed
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}
