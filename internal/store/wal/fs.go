package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is one open log or snapshot file. Implementations must allow
// concurrent ReadAt/WriteAt on disjoint regions; Sync makes every completed
// write durable (it is the commit point the group-commit window batches).
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	// Truncate discards everything at or beyond size — torn-tail repair.
	Truncate(size int64) error
	// Sync makes all completed writes durable.
	Sync() error
	// Size reports the current length.
	Size() (int64, error)
	Close() error
}

// FS is the filesystem surface the durability layer is written against.
// Production uses OSFS; tests substitute MemFS or faultfs.FS to run the
// same code paths against an in-memory store with injectable crash and
// I/O faults — the storage analogue of the faultnet fabric.
type FS interface {
	// OpenFile opens path read-write, creating it if absent.
	OpenFile(path string) (File, error)
	// ReadDir lists the file names (not paths) in dir, sorted; a missing
	// directory returns an empty list.
	ReadDir(dir string) ([]string, error)
	MkdirAll(dir string) error
	// Rename atomically replaces newPath with oldPath's file. Durable
	// only after SyncDir on the parent directory.
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// SyncDir makes directory-level operations (create, rename, remove)
	// in dir durable.
	SyncDir(dir string) error
}

// OSFS is the real-disk FS.
type OSFS struct{}

type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Close() error                             { return o.f.Close() }

func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// OpenFile opens path read-write, creating it if absent.
func (OSFS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// ReadDir lists dir's file names, sorted; missing dirs list as empty.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// MkdirAll creates dir and parents.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Rename atomically replaces newPath.
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove deletes path.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// SyncDir fsyncs the directory so renames/creates/removes are durable.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemFS is an in-memory FS. Unlike faultfs it has no crash model: Sync is
// a no-op and everything written is immediately "durable". It exists for
// benchmarks and tests that want the durability code paths without disk.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: map[string]*memFile{}} }

type memFile struct {
	mu   sync.RWMutex
	data []byte
}

type memHandle struct{ f *memFile }

func (h memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	if off >= int64(len(h.f.data)) {
		return 0, fmt.Errorf("wal: read at %d beyond EOF %d", off, len(h.f.data))
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("wal: short read %d/%d at %d", n, len(p), off)
	}
	return n, nil
}

func (h memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(h.f.data)) {
		h.f.data = append(h.f.data, make([]byte, need-int64(len(h.f.data)))...)
	}
	copy(h.f.data[off:], p)
	return len(p), nil
}

func (h memHandle) Truncate(size int64) error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if size < int64(len(h.f.data)) {
		h.f.data = h.f.data[:size]
	}
	return nil
}

func (h memHandle) Sync() error { return nil }

func (h memHandle) Size() (int64, error) {
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	return int64(len(h.f.data)), nil
}

func (h memHandle) Close() error { return nil }

// OpenFile opens or creates path.
func (m *MemFS) OpenFile(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		f = &memFile{}
		m.files[path] = f
	}
	return memHandle{f}, nil
}

// ReadDir lists the file names directly inside dir, sorted.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for p := range m.files {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		if !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll is a no-op: MemFS directories exist implicitly.
func (m *MemFS) MkdirAll(string) error { return nil }

// Rename atomically replaces newPath with oldPath's file.
func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldPath]
	if !ok {
		return fmt.Errorf("wal: rename %s: no such file", oldPath)
	}
	delete(m.files, oldPath)
	m.files[newPath] = f
	return nil
}

// Remove deletes path.
func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("wal: remove %s: no such file", path)
	}
	delete(m.files, path)
	return nil
}

// SyncDir is a no-op.
func (m *MemFS) SyncDir(string) error { return nil }

var (
	_ FS = OSFS{}
	_ FS = (*MemFS)(nil)
)

// Join builds an FS path. All FS implementations use the host separator
// via path/filepath, so engines can mix OSFS and memory FSes freely.
func Join(elem ...string) string { return filepath.Join(elem...) }
