package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"bespokv/internal/store/wal"
)

// sstEntry is one record inside a sorted table.
type sstEntry struct {
	key       []byte
	value     []byte
	version   uint64
	tombstone bool
}

// bloom is a split-block-free Bloom filter with double hashing, sized at
// ~10 bits per key (≈1% false positives, LevelDB's default).
type bloom struct {
	bits  []uint64
	nbits uint64
	k     int
}

func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	nbits := uint64(n * 10)
	return &bloom{bits: make([]uint64, (nbits+63)/64), nbits: nbits, k: 7}
}

func bloomHashes(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

func (b *bloom) add(key []byte) {
	h1, h2 := bloomHashes(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloom) mayContain(key []byte) bool {
	h1, h2 := bloomHashes(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// sstable is one immutable sorted run. Entries live in memory; when the
// store has a directory each table is also persisted as a self-describing
// .sst file so the tree survives restarts.
type sstable struct {
	id      uint64
	entries []sstEntry
	filter  *bloom
	bytes   int64
	path    string // "" when memory-only
}

func newSSTable(id uint64, entries []sstEntry) *sstable {
	t := &sstable{id: id, entries: entries, filter: newBloom(len(entries))}
	for i := range entries {
		t.filter.add(entries[i].key)
		t.bytes += int64(len(entries[i].key) + len(entries[i].value) + 16)
	}
	return t
}

// get returns the entry for key, if present.
func (t *sstable) get(key []byte) (sstEntry, bool) {
	if !t.filter.mayContain(key) {
		return sstEntry{}, false
	}
	lo, hi := 0, len(t.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.entries[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(t.entries) && bytes.Equal(t.entries[lo].key, key) {
		return t.entries[lo], true
	}
	return sstEntry{}, false
}

// scanRange calls fn for every entry with start <= key < end.
func (t *sstable) scanRange(start, end []byte, fn func(sstEntry) error) error {
	lo, hi := 0, len(t.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.entries[mid].key, start) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < len(t.entries); lo++ {
		if len(end) != 0 && bytes.Compare(t.entries[lo].key, end) >= 0 {
			return nil
		}
		if err := fn(t.entries[lo]); err != nil {
			return err
		}
	}
	return nil
}

const sstMagic = 0x73737462 // "sstb"

// persist writes the table to path as a self-describing file, routed
// through the wal.FS so fault injection covers table I/O. The file is
// fsynced before the rename and the rename is fsynced via the parent
// directory — a table counts as flushed only once both complete, so a
// crash can never leave a referenced-but-hollow .sst behind.
func (t *sstable) persist(fs wal.FS, dir, path string) error {
	var buf bytes.Buffer
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], sstMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(t.entries)))
	buf.Write(hdr[:])
	var scratch []byte
	for i := range t.entries {
		e := &t.entries[i]
		scratch = scratch[:0]
		scratch = binary.AppendUvarint(scratch, uint64(len(e.key)))
		scratch = append(scratch, e.key...)
		scratch = binary.AppendUvarint(scratch, uint64(len(e.value)))
		scratch = append(scratch, e.value...)
		scratch = binary.AppendUvarint(scratch, e.version)
		if e.tombstone {
			scratch = append(scratch, 1)
		} else {
			scratch = append(scratch, 0)
		}
		buf.Write(scratch)
	}
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return err
	}
	if _, err := f.WriteAt(buf.Bytes(), 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	if err := fs.SyncDir(dir); err != nil {
		return err
	}
	t.path = path
	return nil
}

// loadSSTable reads a persisted table back into memory through the FS.
func loadSSTable(fs wal.FS, id uint64, path string) (*sstable, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	raw := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(raw, 0); err != nil {
			return nil, err
		}
	}
	if len(raw) < 12 || binary.LittleEndian.Uint32(raw[0:4]) != sstMagic {
		return nil, fmt.Errorf("lsm: %s is not an sstable", path)
	}
	n := binary.LittleEndian.Uint64(raw[4:12])
	raw = raw[12:]
	entries := make([]sstEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		klen, w := binary.Uvarint(raw)
		if w <= 0 || klen > uint64(len(raw)-w) {
			return nil, fmt.Errorf("lsm: corrupt key in %s", path)
		}
		raw = raw[w:]
		key := append([]byte(nil), raw[:klen]...)
		raw = raw[klen:]
		vlen, w := binary.Uvarint(raw)
		if w <= 0 || vlen > uint64(len(raw)-w) {
			return nil, fmt.Errorf("lsm: corrupt value in %s", path)
		}
		raw = raw[w:]
		value := append([]byte(nil), raw[:vlen]...)
		raw = raw[vlen:]
		version, w := binary.Uvarint(raw)
		if w <= 0 || len(raw) < w+1 {
			return nil, fmt.Errorf("lsm: corrupt version in %s", path)
		}
		tomb := raw[w] == 1
		raw = raw[w+1:]
		entries = append(entries, sstEntry{key: key, value: value, version: version, tombstone: tomb})
	}
	t := newSSTable(id, entries)
	t.path = path
	return t, nil
}

// mergeTables k-way merges newest-first tables into one sorted run,
// keeping the highest version per key and optionally dropping tombstones
// (safe only when merging into the bottommost level). droppedTomb is the
// highest version among dropped tombstones: deltas at or below that
// watermark can no longer be served completely.
func mergeTables(tables []*sstable, dropTombstones bool) (out []sstEntry, droppedTomb uint64) {
	// tables[0] is newest. Walk all tables with cursors picking the
	// smallest key; on ties the newest table wins and the rest advance.
	cursors := make([]int, len(tables))
	for {
		best := -1
		for i, t := range tables {
			if cursors[i] >= len(t.entries) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			c := bytes.Compare(t.entries[cursors[i]].key, tables[best].entries[cursors[best]].key)
			if c < 0 {
				best = i
			}
			// On c==0 keep the earlier (newer) table as best.
		}
		if best == -1 {
			return out, droppedTomb
		}
		winner := tables[best].entries[cursors[best]]
		// Resolve ties across tables by version, advancing every cursor
		// that points at the same key.
		for i, t := range tables {
			if cursors[i] >= len(t.entries) {
				continue
			}
			e := t.entries[cursors[i]]
			if !bytes.Equal(e.key, winner.key) {
				continue
			}
			if e.version > winner.version {
				winner = e
			}
			cursors[i]++
		}
		if dropTombstones && winner.tombstone {
			if winner.version > droppedTomb {
				droppedTomb = winner.version
			}
			continue
		}
		out = append(out, winner)
	}
}
