package lsm

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"bespokv/internal/store"
	"bespokv/internal/store/enginetest"
	"bespokv/internal/store/faultfs"
	"bespokv/internal/store/wal"
)

func TestDurableConformance(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine {
		s, err := New(Options{
			Dir: "lsm", FS: wal.NewMemFS(), Durable: true,
			MemtableBytes: 256, SyncCompaction: true, FanoutLimit: 2, MaxLevels: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	})
}

// TestCrashRestartKeepsAckedWrites is the core durability contract for the
// LSM engine: every acked Put/Delete survives a kill-9-style crash —
// whether its record still sits in the WAL or already reached an sstable.
func TestCrashRestartKeepsAckedWrites(t *testing.T) {
	fs := faultfs.New(11)
	open := func() *Store {
		s, err := New(Options{
			Dir: "node", FS: fs, Durable: true,
			MemtableBytes: 512, SyncCompaction: true, FanoutLimit: 2, MaxLevels: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	type w struct {
		val     string
		ver     uint64
		deleted bool
	}
	acked := map[string]w{}
	var maxAcked uint64
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%03d", i%50)
		if i%9 == 4 {
			_, ver, err := s.Delete([]byte(key), 0)
			if err != nil {
				t.Fatal(err)
			}
			acked[key] = w{ver: ver, deleted: true}
			if ver > maxAcked {
				maxAcked = ver
			}
			continue
		}
		val := fmt.Sprintf("v%d", i)
		ver, err := s.Put([]byte(key), []byte(val), 0)
		if err != nil {
			t.Fatal(err)
		}
		acked[key] = w{val: val, ver: ver}
		if ver > maxAcked {
			maxAcked = ver
		}
	}
	// kill -9: freeze so Close's flush can't reach "disk", then crash.
	fs.Freeze()
	s.Close()
	fs.Crash()

	s2 := open()
	defer s2.Close()
	for key, want := range acked {
		val, ver, found, err := s2.Get([]byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if want.deleted {
			if found {
				t.Fatalf("%s: deleted key resurrected as %q", key, val)
			}
			continue
		}
		if !found {
			t.Fatalf("%s: acked write lost after crash", key)
		}
		if string(val) != want.val || ver != want.ver {
			t.Fatalf("%s = %q v%d, want %q v%d", key, val, ver, want.val, want.ver)
		}
	}
	if got := s2.RecoveredVersion(); got < maxAcked {
		t.Fatalf("RecoveredVersion = %d, want >= %d", got, maxAcked)
	}
}

// TestTornCrashRecovers checks that a crash tearing the final unsynced
// bytes still recovers every acked write, across several tear seeds.
func TestTornCrashRecovers(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		fs := faultfs.New(seed)
		s, err := New(Options{
			Dir: "node", FS: fs, Durable: true,
			MemtableBytes: 1 << 20, SyncCompaction: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
				t.Fatal(err)
			}
		}
		fs.Freeze()
		s.Close()
		fs.CrashTorn()

		s2, err := New(Options{Dir: "node", FS: fs, Durable: true, SyncCompaction: true})
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("k%02d", i)
			val, _, found, err := s2.Get([]byte(key))
			if err != nil {
				t.Fatal(err)
			}
			if !found || string(val) != fmt.Sprintf("v%d", i) {
				t.Fatalf("seed %d: %s = %q found=%v, want v%d", seed, key, val, found, i)
			}
		}
		s2.Close()
	}
}

// TestWALDroppedAfterFlush checks the segment GC: once memtables reach
// fsynced sstables, their WAL segments are removed, so the log does not
// grow with the write volume.
func TestWALDroppedAfterFlush(t *testing.T) {
	fs := wal.NewMemFS()
	s, err := New(Options{
		Dir: "node", FS: fs, Durable: true,
		MemtableBytes: 256, SyncCompaction: true, WalSegmentBytes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte("x"), 32), 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if segs := s.WAL().Segments(); segs > 2 {
		t.Fatalf("WAL holds %d segments after full flush, want <= 2 (flushed segments not dropped)", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSSTablesSurviveCrash checks the flush path's own durability: after a
// flush, a crash that drops all unsynced data must still reopen with the
// flushed records, because persist fsyncs the table file and the directory
// rename before the WAL lets go of the covering segments.
func TestSSTablesSurviveCrash(t *testing.T) {
	fs := faultfs.New(3)
	s, err := New(Options{
		Dir: "node", FS: fs, Durable: true,
		MemtableBytes: 1 << 20, SyncCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush() // everything now in an sstable; WAL segments dropped
	fs.Freeze()
	s.Close()
	fs.Crash()

	s2, err := New(Options{Dir: "node", FS: fs, Durable: true, SyncCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 50 {
		t.Fatalf("Len after crash = %d, want 50", got)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%02d", i)
		val, _, found, err := s2.Get([]byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if !found || string(val) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s = %q found=%v", key, val, found)
		}
	}
}

// TestCleanCloseFlushesMemtable checks the clean-shutdown satellite for a
// non-durable on-disk store: Close flushes the memtable, so no WAL is
// needed to survive a graceful restart.
func TestCleanCloseFlushesMemtable(t *testing.T) {
	fs := wal.NewMemFS()
	s, err := New(Options{Dir: "node", FS: fs, SyncCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Delete([]byte("k05"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Options{Dir: "node", FS: fs, SyncCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 29 {
		t.Fatalf("Len after clean restart = %d, want 29", got)
	}
	if _, _, found, _ := s2.Get([]byte("k05")); found {
		t.Fatal("deleted key resurrected after clean restart")
	}
}

// TestSnapshotSinceDeltaAndTombFloor checks the incremental-rejoin hooks:
// a fresh store serves exact deltas (live + tombstones), and once
// bottom-level compaction drops tombstones the store refuses deltas older
// than the drop watermark instead of silently serving an incomplete one.
func TestSnapshotSinceDeltaAndTombFloor(t *testing.T) {
	s, err := New(Options{
		Dir: "node", FS: wal.NewMemFS(), Durable: true,
		MemtableBytes: 1 << 20, SyncCompaction: true, FanoutLimit: 1, MaxLevels: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	mark := s.MaxVersion()
	if _, err := s.Put([]byte("k3"), []byte("new"), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Delete([]byte("k5"), 0); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{} // key -> tombstone
	ok, err := s.SnapshotSince(mark, func(kv store.KV, tomb bool) error {
		got[string(kv.Key)] = tomb
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("SnapshotSince: ok=%v err=%v", ok, err)
	}
	if len(got) != 2 || got["k3"] != false || got["k5"] != true {
		t.Fatalf("delta = %v, want {k3:live, k5:tombstone}", got)
	}

	// Force the tombstone into the bottom level where compaction drops it:
	// two flushed tables exceed FanoutLimit 1 and compact into the bottom.
	s.Flush()
	if _, err := s.Put([]byte("kx"), []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if floor := s.tombFloor.Load(); floor == 0 {
		t.Fatal("bottom-level compaction did not record dropped tombstone")
	}
	if ok, err := s.SnapshotSince(mark, func(store.KV, bool) error { return nil }); err != nil || ok {
		t.Fatalf("SnapshotSince below tombFloor: ok=%v err=%v, want ok=false (full export fallback)", ok, err)
	}
	// A delta from the current watermark is still fine.
	if ok, err := s.SnapshotSince(s.MaxVersion(), func(store.KV, bool) error { return nil }); err != nil || !ok {
		t.Fatalf("SnapshotSince at head: ok=%v err=%v", ok, err)
	}
}

// TestPersistFailureKeepsWAL checks the failure latch: when an sstable
// persist fails, WAL segments are retained (not dropped, not reset on
// close) so a restart can re-replay what never reached a table.
func TestPersistFailureKeepsWAL(t *testing.T) {
	fs := faultfs.New(5)
	s, err := New(Options{
		Dir: "node", FS: fs, Durable: true,
		MemtableBytes: 256, SyncCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte("x"), 24), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Every subsequent data-file sync fails; WAL appends already happened
	// for the records above, and the flush below must fail to persist.
	fs.FailSyncs(0, faultfs.ErrInjected)
	s.Flush()
	fs.FailSyncs(-1, nil)
	s.mu.Lock()
	latched := s.persistFailed
	s.mu.Unlock()
	if !latched {
		t.Fatal("persist failure did not latch")
	}
	s.Close()
	fs.Crash()

	s2, err := New(Options{Dir: "node", FS: fs, Durable: true, SyncCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%02d", i)
		if _, _, found, _ := s2.Get([]byte(key)); !found {
			t.Fatalf("%s lost: WAL was dropped despite persist failure", key)
		}
	}
}

// benchParallelPut drives concurrent unique-key writes — the shape that
// lets WAL group commit amortize one fsync over many appenders.
func benchParallelPut(b *testing.B, s *Store) {
	b.Helper()
	var seq atomic.Uint64
	val := []byte("benchmark-value-0123456789abcdef")
	b.SetParallelism(16) // concurrent writers even on one proc: the group-commit shape
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := []byte(fmt.Sprintf("key-%012d", seq.Add(1)))
			if _, err := s.Put(k, val, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPutMemoryParallel is the in-memory baseline for the durable
// comparison below (same workload, no WAL).
func BenchmarkPutMemoryParallel(b *testing.B) {
	s, err := New(Options{MemtableBytes: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	benchParallelPut(b, s)
}

// BenchmarkPutDurableParallel measures the WAL-ed LSM under concurrent
// writers over faultfs (in-process, so the number isolates the
// group-commit machinery, not a device's fsync latency). The acceptance
// bar is within ~2x of BenchmarkPutMemoryParallel.
func BenchmarkPutDurableParallel(b *testing.B) {
	s, err := New(Options{Dir: "bench", FS: faultfs.New(1), Durable: true, MemtableBytes: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	benchParallelPut(b, s)
}
