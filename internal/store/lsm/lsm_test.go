package lsm

import (
	"fmt"
	"path/filepath"
	"testing"

	"bespokv/internal/store"
	"bespokv/internal/store/enginetest"
)

func TestConformanceMemory(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine {
		s, err := New(Options{SyncCompaction: true, MemtableBytes: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestConformanceBackgroundCompaction(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine {
		s, err := New(Options{MemtableBytes: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestConformanceDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("disk conformance in -short mode")
	}
	enginetest.Run(t, func(t *testing.T) store.Engine {
		s, err := New(Options{Dir: t.TempDir(), SyncCompaction: true, MemtableBytes: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestFlushAndCompactionTriggered(t *testing.T) {
	s, err := New(Options{SyncCompaction: true, MemtableBytes: 4096, FanoutLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if _, err := s.Put(k, make([]byte, 64), 0); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("no memtable flushes happened")
	}
	if st.Compactions == 0 {
		t.Fatal("no compactions happened")
	}
	if st.CompactionBytes == 0 {
		t.Fatal("compaction byte counter not advancing")
	}
	// Every key still readable after flush/compaction churn.
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if _, _, ok, err := s.Get(k); err != nil || !ok {
			t.Fatalf("Get(%q) after compaction: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestOverwritesResolveAcrossTables(t *testing.T) {
	s, err := New(Options{SyncCompaction: true, MemtableBytes: 2048, FanoutLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Rewrite the same small key set across many flush boundaries.
	for round := 0; round < 40; round++ {
		for i := 0; i < 10; i++ {
			k := []byte(fmt.Sprintf("k%02d", i))
			if _, err := s.Put(k, []byte(fmt.Sprintf("round-%02d", round)), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		v, _, ok, err := s.Get(k)
		if err != nil || !ok || string(v) != "round-39" {
			t.Fatalf("Get(%q) = (%q,%v,%v), want round-39", k, v, ok, err)
		}
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len=%d, want 10", got)
	}
}

func TestTombstonesDroppedAtBottomLevel(t *testing.T) {
	s, err := New(Options{SyncCompaction: true, MemtableBytes: 1024, FanoutLimit: 1, MaxLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		s.Put(k, make([]byte, 32), 0)
		s.Delete(k, 0)
	}
	s.Flush()
	st := s.Stats()
	if st.Tables == 0 {
		t.Skip("everything still in memtable")
	}
	// After deletes dominate and the single bottom level absorbed them,
	// the live count must be zero.
	if got := s.Len(); got != 0 {
		t.Fatalf("Len=%d, want 0 after delete-all", got)
	}
}

func TestScanMergesLevels(t *testing.T) {
	s, err := New(Options{SyncCompaction: true, MemtableBytes: 1024, FanoutLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		s.Put(k, []byte("old"), 0)
	}
	// Overwrite a band; some of these stay in the memtable.
	for i := 100; i < 150; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		s.Put(k, []byte("new"), 0)
	}
	kvs, err := s.Scan([]byte("k095"), []byte("k105"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("scan returned %d keys, want 10", len(kvs))
	}
	for _, kv := range kvs {
		want := "old"
		if string(kv.Key) >= "k100" {
			want = "new"
		}
		if string(kv.Value) != want {
			t.Fatalf("scan %q = %q, want %q", kv.Key, kv.Value, want)
		}
	}
}

func TestDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir, SyncCompaction: true, MemtableBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)), 0)
	}
	s.Delete([]byte("k000"), 0)
	s.Flush() // persist the final memtable too
	s.Close()

	matches, _ := filepath.Glob(filepath.Join(dir, "*.sst"))
	if len(matches) == 0 {
		t.Fatal("no persisted sstables")
	}

	re, err := New(Options{Dir: dir, SyncCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, _, ok, _ := re.Get([]byte("k000")); ok {
		t.Fatal("deleted key resurrected after recovery")
	}
	v, _, ok, _ := re.Get([]byte("k199"))
	if !ok || string(v) != "v199" {
		t.Fatalf("k199 after recovery = (%q,%v)", v, ok)
	}
	if got := re.Len(); got != 199 {
		t.Fatalf("Len=%d after recovery, want 199", got)
	}
}

func TestBloomFilter(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add([]byte(fmt.Sprintf("present-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain([]byte(fmt.Sprintf("present-%d", i))) {
			t.Fatalf("false negative for present-%d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.mayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if fp > 500 { // 5%, well above the ~1% design point
		t.Fatalf("bloom false positive rate too high: %d/10000", fp)
	}
}

func TestWriteAmplificationVisible(t *testing.T) {
	s, err := New(Options{SyncCompaction: true, MemtableBytes: 2048, FanoutLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var logical int64
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := make([]byte, 64)
		s.Put(k, v, 0)
		logical += int64(len(k) + len(v))
	}
	s.Flush()
	st := s.Stats()
	if st.CompactionBytes <= logical {
		t.Fatalf("write amplification missing: compacted %d <= logical %d", st.CompactionBytes, logical)
	}
}

func BenchmarkPut(b *testing.B) {
	s, _ := New(Options{MemtableBytes: 8 << 20})
	defer s.Close()
	val := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), val, 0)
	}
}

func BenchmarkGet(b *testing.B) {
	s, _ := New(Options{SyncCompaction: true, MemtableBytes: 1 << 18})
	defer s.Close()
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), make([]byte, 32), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("key-%09d", i%n)))
	}
}
