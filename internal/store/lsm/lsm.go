// Package lsm implements a log-structured merge-tree datalet engine: a
// B+-tree memtable, immutable flush queue, and size-tiered levels of sorted
// tables with background compaction and Bloom filters. It is the
// reproduction's LevelDB/Cassandra-class engine: fastest for write-heavy
// workloads (no in-place updates), slower for reads than the B+-tree
// (Fig. 6), and its compaction write amplification is what drags the
// "cassandra" baseline profile in Fig. 12.
package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"bespokv/internal/store"
	"bespokv/internal/store/btree"
)

// Options configure the engine.
type Options struct {
	// Dir persists SSTables as .sst files; empty keeps them in memory.
	Dir string
	// MemtableBytes is the flush threshold (default 4 MiB).
	MemtableBytes int64
	// FanoutLimit is the max tables per level before compaction into the
	// next level (default 4).
	FanoutLimit int
	// MaxLevels bounds the tree depth (default 4); the bottom level is
	// where tombstones are dropped.
	MaxLevels int
	// SyncCompaction runs flush+compaction inline with the triggering Put
	// instead of in the background; deterministic mode for tests.
	SyncCompaction bool
}

func (o *Options) defaults() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.FanoutLimit <= 0 {
		o.FanoutLimit = 4
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 4
	}
}

// Store is the LSM engine.
type Store struct {
	opts Options

	mu       sync.RWMutex
	mem      *btree.Store
	memBytes int64
	imm      []*btree.Store // newest first
	levels   [][]*sstable   // levels[i] newest first
	closed   bool

	flushCh chan struct{}
	doneCh  chan struct{}
	bg      sync.WaitGroup

	nextTableID atomic.Uint64
	maxVer      atomic.Uint64

	// CompactionBytes counts bytes rewritten by flushes and compactions;
	// the write-amplification ablation bench reads it.
	compactionBytes atomic.Int64
	flushes         atomic.Int64
	compactions     atomic.Int64
}

// New opens an LSM store, loading any persisted tables from opts.Dir.
func New(opts Options) (*Store, error) {
	opts.defaults()
	s := &Store{
		opts:    opts,
		mem:     btree.New(),
		levels:  make([][]*sstable, opts.MaxLevels),
		flushCh: make(chan struct{}, 1),
		doneCh:  make(chan struct{}),
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
		if err := s.loadTables(); err != nil {
			return nil, err
		}
	}
	if !opts.SyncCompaction {
		s.bg.Add(1)
		go s.background()
	}
	return s, nil
}

// Name reports "lsm".
func (s *Store) Name() string { return "lsm" }

// loadTables reads persisted .sst files into level 0, newest (highest id)
// first. Size-tiered level 0 tolerates overlap, so flat recovery is sound.
func (s *Store) loadTables() error {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return err
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] }) // newest first
	for _, id := range ids {
		t, err := loadSSTable(id, s.tablePath(id))
		if err != nil {
			return err
		}
		s.levels[0] = append(s.levels[0], t)
		if id >= s.nextTableID.Load() {
			s.nextTableID.Store(id + 1)
		}
		for i := range t.entries {
			if v := t.entries[i].version; v > s.maxVer.Load() {
				s.maxVer.Store(v)
			}
		}
	}
	return nil
}

func (s *Store) tablePath(id uint64) string {
	return filepath.Join(s.opts.Dir, fmt.Sprintf("%012d.sst", id))
}

func (s *Store) background() {
	defer s.bg.Done()
	for {
		select {
		case <-s.doneCh:
			return
		case <-s.flushCh:
			s.flushAndCompact()
		}
	}
}

// observeVersion keeps the local counter ahead of replicated versions.
func (s *Store) observeVersion(v uint64) {
	for {
		cur := s.maxVer.Load()
		if v <= cur || s.maxVer.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Put stores value under key with LWW semantics.
func (s *Store) Put(key, value []byte, version uint64) (uint64, error) {
	if version == 0 {
		version = s.maxVer.Add(1)
	} else {
		s.observeVersion(version)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, store.ErrClosed
	}
	// LWW against anything already visible for this key.
	if _, curVer, found := s.lookupLocked(key); found && version < curVer {
		s.mu.Unlock()
		return curVer, nil
	}
	if _, err := s.mem.Put(key, value, version); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.memBytes += int64(len(key) + len(value) + 24)
	s.maybeScheduleFlushLocked()
	s.mu.Unlock()
	return version, nil
}

// Delete writes a tombstone for key with LWW semantics.
func (s *Store) Delete(key []byte, version uint64) (bool, uint64, error) {
	if version == 0 {
		version = s.maxVer.Add(1)
	} else {
		s.observeVersion(version)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, 0, store.ErrClosed
	}
	e, curVer, found := s.lookupLocked(key)
	if found && version < curVer {
		s.mu.Unlock()
		return !e.tombstone, curVer, nil
	}
	existed := found && !e.tombstone
	if _, _, err := s.mem.Delete(key, version); err != nil {
		s.mu.Unlock()
		return false, 0, err
	}
	s.memBytes += int64(len(key) + 24)
	s.maybeScheduleFlushLocked()
	s.mu.Unlock()
	return existed, version, nil
}

func (s *Store) maybeScheduleFlushLocked() {
	if s.memBytes < s.opts.MemtableBytes {
		return
	}
	s.imm = append([]*btree.Store{s.mem}, s.imm...)
	s.mem = btree.New()
	s.memBytes = 0
	if s.opts.SyncCompaction {
		s.mu.Unlock()
		s.flushAndCompact()
		s.mu.Lock()
		return
	}
	select {
	case s.flushCh <- struct{}{}:
	default:
	}
}

// lookupLocked finds the freshest record for key across memtables and all
// levels. Caller holds mu (read or write).
func (s *Store) lookupLocked(key []byte) (sstEntry, uint64, bool) {
	if v, ver, tomb, ok := s.mem.GetAll(key); ok {
		return sstEntry{key: key, value: v, version: ver, tombstone: tomb}, ver, true
	}
	for _, m := range s.imm {
		if v, ver, tomb, ok := m.GetAll(key); ok {
			return sstEntry{key: key, value: v, version: ver, tombstone: tomb}, ver, true
		}
	}
	for _, level := range s.levels {
		for _, t := range level {
			if e, ok := t.get(key); ok {
				return e, e.version, true
			}
		}
	}
	return sstEntry{}, 0, false
}

// Get returns the live value for key.
func (s *Store) Get(key []byte) ([]byte, uint64, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, 0, false, store.ErrClosed
	}
	e, ver, found := s.lookupLocked(key)
	if !found || e.tombstone {
		return nil, 0, false, nil
	}
	return store.CloneBytes(e.value), ver, true, nil
}

// flushAndCompact drains immutable memtables into level 0, then compacts
// any level that exceeds the fanout limit into the next one.
func (s *Store) flushAndCompact() {
	for {
		s.mu.Lock()
		if len(s.imm) == 0 {
			s.mu.Unlock()
			break
		}
		m := s.imm[len(s.imm)-1] // oldest first so newer data lands above
		s.mu.Unlock()

		var entries []sstEntry
		_ = m.SnapshotAll(func(key, value []byte, version uint64, tomb bool) error {
			entries = append(entries, sstEntry{
				key:       append([]byte(nil), key...),
				value:     append([]byte(nil), value...),
				version:   version,
				tombstone: tomb,
			})
			return nil
		})
		t := newSSTable(s.nextTableID.Add(1), entries)
		s.compactionBytes.Add(t.bytes)
		s.flushes.Add(1)
		if s.opts.Dir != "" {
			if err := t.persist(s.tablePath(t.id)); err != nil {
				// Keep serving from memory; the table stays unpersisted.
				t.path = ""
			}
		}
		s.mu.Lock()
		s.levels[0] = append([]*sstable{t}, s.levels[0]...)
		s.imm = s.imm[:len(s.imm)-1]
		s.mu.Unlock()
	}
	s.compactLevels()
}

func (s *Store) compactLevels() {
	for lvl := 0; lvl < s.opts.MaxLevels-1; lvl++ {
		s.mu.Lock()
		if len(s.levels[lvl]) <= s.opts.FanoutLimit {
			s.mu.Unlock()
			continue
		}
		// Merge this level plus the next (so versions resolve globally
		// for the merged key range) into one run in the next level.
		victims := append(append([]*sstable(nil), s.levels[lvl]...), s.levels[lvl+1]...)
		s.mu.Unlock()

		bottom := lvl+1 == s.opts.MaxLevels-1
		merged := mergeTables(victims, bottom)
		t := newSSTable(s.nextTableID.Add(1), merged)
		s.compactionBytes.Add(t.bytes)
		s.compactions.Add(1)
		if s.opts.Dir != "" {
			if err := t.persist(s.tablePath(t.id)); err != nil {
				t.path = ""
			}
		}
		s.mu.Lock()
		s.levels[lvl] = nil
		s.levels[lvl+1] = []*sstable{t}
		s.mu.Unlock()
		for _, v := range victims {
			if v.path != "" {
				_ = os.Remove(v.path)
			}
		}
	}
}

// Scan merges live pairs in [start, end) from every source in key order.
func (s *Store) Scan(start, end []byte, limit int) ([]store.KV, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, store.ErrClosed
	}
	best := map[string]sstEntry{}
	collect := func(e sstEntry) {
		if cur, ok := best[string(e.key)]; !ok || e.version > cur.version {
			best[string(e.key)] = e
		}
	}
	memCollect := func(m *btree.Store) error {
		return m.ScanAll(start, end, func(k, v []byte, ver uint64, tomb bool) error {
			collect(sstEntry{
				key:       append([]byte(nil), k...),
				value:     append([]byte(nil), v...),
				version:   ver,
				tombstone: tomb,
			})
			return nil
		})
	}
	if err := memCollect(s.mem); err != nil {
		s.mu.RUnlock()
		return nil, err
	}
	for _, m := range s.imm {
		if err := memCollect(m); err != nil {
			s.mu.RUnlock()
			return nil, err
		}
	}
	for _, level := range s.levels {
		for _, t := range level {
			_ = t.scanRange(start, end, func(e sstEntry) error {
				collect(e)
				return nil
			})
		}
	}
	s.mu.RUnlock()

	keys := make([]string, 0, len(best))
	for k, e := range best {
		if e.tombstone {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]store.KV, len(keys))
	for i, k := range keys {
		e := best[k]
		out[i] = store.KV{Key: []byte(k), Value: e.value, Version: e.version}
	}
	return out, nil
}

// Len returns the number of live keys (a full merge count).
func (s *Store) Len() int {
	n := 0
	_ = s.Snapshot(func(store.KV) error { n++; return nil })
	return n
}

// Snapshot calls fn for every live pair in key order.
func (s *Store) Snapshot(fn func(store.KV) error) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return store.ErrClosed
	}
	s.mu.RUnlock()
	kvs, err := s.Scan(nil, nil, 0)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		if err := fn(kv); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports flush/compaction activity for ablation benches.
type Stats struct {
	Flushes         int64
	Compactions     int64
	CompactionBytes int64
	Tables          int
}

// Stats returns a snapshot of compaction counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	tables := 0
	for _, level := range s.levels {
		tables += len(level)
	}
	s.mu.RUnlock()
	return Stats{
		Flushes:         s.flushes.Load(),
		Compactions:     s.compactions.Load(),
		CompactionBytes: s.compactionBytes.Load(),
		Tables:          tables,
	}
}

// Flush forces the current memtable to disk-level tables and compacts.
func (s *Store) Flush() {
	s.mu.Lock()
	if s.mem.Items() > 0 {
		s.imm = append([]*btree.Store{s.mem}, s.imm...)
		s.mem = btree.New()
		s.memBytes = 0
	}
	s.mu.Unlock()
	s.flushAndCompact()
}

// Close stops background compaction and marks the engine closed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.doneCh)
	s.bg.Wait()
	return nil
}

var _ store.Engine = (*Store)(nil)
