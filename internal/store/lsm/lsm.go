// Package lsm implements a log-structured merge-tree datalet engine: a
// B+-tree memtable, immutable flush queue, and size-tiered levels of sorted
// tables with background compaction and Bloom filters. It is the
// reproduction's LevelDB/Cassandra-class engine: fastest for write-heavy
// workloads (no in-place updates), slower for reads than the B+-tree
// (Fig. 6), and its compaction write amplification is what drags the
// "cassandra" baseline profile in Fig. 12.
//
// With Options.Durable the memtable is backed by a write-ahead log: every
// Put/Delete is fsynced (group-committed) before it is acked, Open replays
// the log into a fresh memtable, and log segments are dropped once the
// memtables holding their records are flushed to fsynced sstables.
package lsm

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/store"
	"bespokv/internal/store/btree"
	"bespokv/internal/store/wal"
)

// Options configure the engine.
type Options struct {
	// Dir persists SSTables as .sst files; empty keeps them in memory.
	Dir string
	// FS routes all file I/O (sstables and WAL); nil means the real
	// disk. Substituting faultfs here puts the whole engine under crash
	// and I/O fault injection.
	FS wal.FS
	// MemtableBytes is the flush threshold (default 4 MiB).
	MemtableBytes int64
	// FanoutLimit is the max tables per level before compaction into the
	// next level (default 4).
	FanoutLimit int
	// MaxLevels bounds the tree depth (default 4); the bottom level is
	// where tombstones are dropped.
	MaxLevels int
	// SyncCompaction runs flush+compaction inline with the triggering Put
	// instead of in the background; deterministic mode for tests.
	SyncCompaction bool
	// Durable write-ahead-logs the memtable so acked writes survive a
	// crash. Requires Dir.
	Durable bool
	// SyncDelay widens the WAL group-commit window (see wal.Options).
	SyncDelay time.Duration
	// WalSegmentBytes is the WAL segment rotation threshold.
	WalSegmentBytes int64
}

func (o *Options) defaults() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.FanoutLimit <= 0 {
		o.FanoutLimit = 4
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 4
	}
	if o.FS == nil {
		o.FS = wal.OSFS{}
	}
}

// noSeg marks a memtable with no WAL records yet.
const noSeg = ^uint64(0)

// immTable is a sealed memtable awaiting flush, paired with the WAL
// bookkeeping that ties its records to log segments: walSeg is the
// segment sealed when the memtable was, and minSeg the smallest segment
// holding any of its records (an append can race a seal and land its
// record one segment early, so the drop barrier honours minSeg too).
type immTable struct {
	mem    *btree.Store
	walSeg uint64
	minSeg uint64
}

// Store is the LSM engine.
type Store struct {
	opts Options
	fs   wal.FS
	wal  *wal.Log // nil unless Options.Durable

	mu        sync.RWMutex
	mem       *btree.Store
	memBytes  int64
	memMinSeg uint64
	imm       []immTable   // newest first
	levels    [][]*sstable // levels[i] newest first
	closed    bool
	// persistFailed latches on any sstable persist failure: WAL segments
	// are then never dropped and the log is kept on close, so a restart
	// can replay what the failed table could not hold durably.
	persistFailed bool

	flushMu sync.Mutex // serializes flushAndCompact passes
	flushCh chan struct{}
	doneCh  chan struct{}
	bg      sync.WaitGroup

	nextTableID  atomic.Uint64
	maxVer       atomic.Uint64
	recoveredVer uint64
	// tombFloor is the highest version among tombstones dropped by
	// bottom-level compaction; deltas since < tombFloor are incomplete.
	tombFloor atomic.Uint64

	// CompactionBytes counts bytes rewritten by flushes and compactions;
	// the write-amplification ablation bench reads it.
	compactionBytes atomic.Int64
	flushes         atomic.Int64
	compactions     atomic.Int64
}

// New opens an LSM store, loading any persisted tables from opts.Dir and,
// in durable mode, replaying the write-ahead log into the memtable.
func New(opts Options) (*Store, error) {
	opts.defaults()
	if opts.Durable && opts.Dir == "" {
		return nil, errors.New("lsm: Durable requires Dir")
	}
	s := &Store{
		opts:      opts,
		fs:        opts.FS,
		mem:       btree.New(),
		memMinSeg: noSeg,
		levels:    make([][]*sstable, opts.MaxLevels),
		flushCh:   make(chan struct{}, 1),
		doneCh:    make(chan struct{}),
	}
	if opts.Dir != "" {
		if err := s.fs.MkdirAll(opts.Dir); err != nil {
			return nil, err
		}
		if err := s.loadTables(); err != nil {
			return nil, err
		}
	}
	if opts.Durable {
		l, err := wal.Open(wal.Options{
			Dir:          wal.Join(opts.Dir, "wal"),
			FS:           opts.FS,
			SegmentBytes: opts.WalSegmentBytes,
			SyncDelay:    opts.SyncDelay,
		})
		if err != nil {
			return nil, err
		}
		replayed := 0
		if err := l.Replay(func(body []byte) error {
			rec, err := wal.DecodeRecord(body)
			if err != nil {
				return err
			}
			s.replayRecord(rec)
			replayed++
			return nil
		}); err != nil {
			l.Close()
			return nil, err
		}
		s.wal = l
		if replayed > 0 {
			// The replayed records live in the existing segments; pin
			// them until this memtable flushes.
			s.memMinSeg = 1
		}
	}
	s.recoveredVer = s.maxVer.Load()
	if !opts.SyncCompaction {
		s.bg.Add(1)
		go s.background()
	}
	return s, nil
}

// Name reports "lsm".
func (s *Store) Name() string { return "lsm" }

// replayRecord applies one WAL record during Open. LWW against loaded
// sstables keeps replay idempotent: a record whose key already has a
// newer on-disk version must not shadow it from the memtable.
func (s *Store) replayRecord(rec wal.Record) {
	s.observeVersion(rec.Version)
	if _, curVer, found := s.lookupLocked(rec.Key); found && rec.Version < curVer {
		return
	}
	if rec.Tombstone {
		_, _, _ = s.mem.Delete(rec.Key, rec.Version)
		s.memBytes += int64(len(rec.Key) + 24)
	} else {
		_, _ = s.mem.Put(rec.Key, rec.Value, rec.Version)
		s.memBytes += int64(len(rec.Key) + len(rec.Value) + 24)
	}
}

// loadTables reads persisted .sst files into level 0, newest (highest id)
// first. Size-tiered level 0 tolerates overlap, so flat recovery is sound.
func (s *Store) loadTables() error {
	names, err := s.fs.ReadDir(s.opts.Dir)
	if err != nil {
		return err
	}
	var ids []uint64
	for _, name := range names {
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] }) // newest first
	for _, id := range ids {
		t, err := loadSSTable(s.fs, id, s.tablePath(id))
		if err != nil {
			return err
		}
		s.levels[0] = append(s.levels[0], t)
		if id >= s.nextTableID.Load() {
			s.nextTableID.Store(id + 1)
		}
		for i := range t.entries {
			if v := t.entries[i].version; v > s.maxVer.Load() {
				s.maxVer.Store(v)
			}
		}
	}
	return nil
}

func (s *Store) tablePath(id uint64) string {
	return wal.Join(s.opts.Dir, fmt.Sprintf("%012d.sst", id))
}

func (s *Store) background() {
	defer s.bg.Done()
	for {
		select {
		case <-s.doneCh:
			return
		case <-s.flushCh:
			s.flushAndCompact()
		}
	}
}

// observeVersion keeps the local counter ahead of replicated versions.
func (s *Store) observeVersion(v uint64) {
	for {
		cur := s.maxVer.Load()
		if v <= cur || s.maxVer.CompareAndSwap(cur, v) {
			return
		}
	}
}

// logRecord appends the write to the WAL (fsynced before return) and
// reports which segment it landed in.
func (s *Store) logRecord(key, value []byte, version uint64, tombstone bool) (uint64, error) {
	body := wal.EncodeRecord(nil, wal.Record{Tombstone: tombstone, Version: version, Key: key, Value: value})
	return s.wal.Append(body)
}

// Put stores value under key with LWW semantics. In durable mode the
// record is fsynced to the WAL before it is applied and acked.
func (s *Store) Put(key, value []byte, version uint64) (uint64, error) {
	if version == 0 {
		version = s.maxVer.Add(1)
	} else {
		s.observeVersion(version)
	}
	var seg uint64
	if s.wal != nil {
		var err error
		if seg, err = s.logRecord(key, value, version, false); err != nil {
			if errors.Is(err, wal.ErrClosed) {
				err = store.ErrClosed
			}
			return 0, err
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, store.ErrClosed
	}
	if s.wal != nil && seg < s.memMinSeg {
		s.memMinSeg = seg
	}
	// LWW against anything already visible for this key.
	if _, curVer, found := s.lookupLocked(key); found && version < curVer {
		s.mu.Unlock()
		return curVer, nil
	}
	if _, err := s.mem.Put(key, value, version); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.memBytes += int64(len(key) + len(value) + 24)
	s.maybeScheduleFlushLocked()
	s.mu.Unlock()
	return version, nil
}

// Delete writes a tombstone for key with LWW semantics.
func (s *Store) Delete(key []byte, version uint64) (bool, uint64, error) {
	if version == 0 {
		version = s.maxVer.Add(1)
	} else {
		s.observeVersion(version)
	}
	var seg uint64
	if s.wal != nil {
		var err error
		if seg, err = s.logRecord(key, nil, version, true); err != nil {
			if errors.Is(err, wal.ErrClosed) {
				err = store.ErrClosed
			}
			return false, 0, err
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, 0, store.ErrClosed
	}
	if s.wal != nil && seg < s.memMinSeg {
		s.memMinSeg = seg
	}
	e, curVer, found := s.lookupLocked(key)
	if found && version < curVer {
		s.mu.Unlock()
		return !e.tombstone, curVer, nil
	}
	existed := found && !e.tombstone
	if _, _, err := s.mem.Delete(key, version); err != nil {
		s.mu.Unlock()
		return false, 0, err
	}
	s.memBytes += int64(len(key) + 24)
	s.maybeScheduleFlushLocked()
	s.mu.Unlock()
	return existed, version, nil
}

// sealMemLocked moves the current memtable onto the immutable queue. In
// durable mode the WAL rotates at the seal so the sealed memtable's
// records sit in segments <= walSeg (modulo racing appends, covered by
// minSeg) and can be dropped once it flushes. Caller holds mu.
func (s *Store) sealMemLocked() {
	var sealedSeg uint64
	if s.wal != nil {
		seg, err := s.wal.Rotate()
		if err == nil {
			sealedSeg = seg
		} else {
			// Rotation (an fsync) failed: never drop segments for this
			// memtable and keep the whole log on close.
			s.persistFailed = true
		}
	}
	s.imm = append([]immTable{{mem: s.mem, walSeg: sealedSeg, minSeg: s.memMinSeg}}, s.imm...)
	s.mem = btree.New()
	s.memBytes = 0
	s.memMinSeg = noSeg
}

func (s *Store) maybeScheduleFlushLocked() {
	if s.memBytes < s.opts.MemtableBytes {
		return
	}
	s.sealMemLocked()
	if s.opts.SyncCompaction {
		s.mu.Unlock()
		s.flushAndCompact()
		s.mu.Lock()
		return
	}
	select {
	case s.flushCh <- struct{}{}:
	default:
	}
}

// lookupLocked finds the freshest record for key across memtables and all
// levels. Caller holds mu (read or write).
func (s *Store) lookupLocked(key []byte) (sstEntry, uint64, bool) {
	if v, ver, tomb, ok := s.mem.GetAll(key); ok {
		return sstEntry{key: key, value: v, version: ver, tombstone: tomb}, ver, true
	}
	for _, m := range s.imm {
		if v, ver, tomb, ok := m.mem.GetAll(key); ok {
			return sstEntry{key: key, value: v, version: ver, tombstone: tomb}, ver, true
		}
	}
	for _, level := range s.levels {
		for _, t := range level {
			if e, ok := t.get(key); ok {
				return e, e.version, true
			}
		}
	}
	return sstEntry{}, 0, false
}

// Get returns the live value for key.
func (s *Store) Get(key []byte) ([]byte, uint64, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, 0, false, store.ErrClosed
	}
	e, ver, found := s.lookupLocked(key)
	if !found || e.tombstone {
		return nil, 0, false, nil
	}
	return store.CloneBytes(e.value), ver, true, nil
}

// flushAndCompact drains immutable memtables into level 0, then compacts
// any level that exceeds the fanout limit into the next one.
func (s *Store) flushAndCompact() {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	for {
		s.mu.Lock()
		if len(s.imm) == 0 {
			s.mu.Unlock()
			break
		}
		it := s.imm[len(s.imm)-1] // oldest first so newer data lands above
		s.mu.Unlock()

		var entries []sstEntry
		_ = it.mem.SnapshotAll(func(key, value []byte, version uint64, tomb bool) error {
			entries = append(entries, sstEntry{
				key:       append([]byte(nil), key...),
				value:     append([]byte(nil), value...),
				version:   version,
				tombstone: tomb,
			})
			return nil
		})
		t := newSSTable(s.nextTableID.Add(1), entries)
		s.compactionBytes.Add(t.bytes)
		s.flushes.Add(1)
		if s.opts.Dir != "" {
			if err := t.persist(s.fs, s.opts.Dir, s.tablePath(t.id)); err != nil {
				// Keep serving from memory; the table stays unpersisted
				// and the WAL (if any) keeps covering its records.
				t.path = ""
			}
		}
		s.mu.Lock()
		s.levels[0] = append([]*sstable{t}, s.levels[0]...)
		s.imm = s.imm[:len(s.imm)-1]
		if t.path == "" && s.opts.Dir != "" {
			s.persistFailed = true
		}
		var drop uint64
		if s.wal != nil && !s.persistFailed {
			// The flushed memtable's records are on fsynced disk; its
			// segments can go — except any segment still feeding an
			// unflushed memtable (racing appends can land one early).
			drop = it.walSeg
			floor := func(minSeg uint64) {
				if minSeg != noSeg && minSeg > 0 && minSeg-1 < drop {
					drop = minSeg - 1
				}
			}
			for _, other := range s.imm {
				floor(other.minSeg)
			}
			floor(s.memMinSeg)
		}
		s.mu.Unlock()
		if drop > 0 {
			_ = s.wal.DropThrough(drop)
		}
	}
	s.compactLevels()
}

func (s *Store) compactLevels() {
	for lvl := 0; lvl < s.opts.MaxLevels-1; lvl++ {
		s.mu.Lock()
		if len(s.levels[lvl]) <= s.opts.FanoutLimit {
			s.mu.Unlock()
			continue
		}
		// Merge this level plus the next (so versions resolve globally
		// for the merged key range) into one run in the next level.
		victims := append(append([]*sstable(nil), s.levels[lvl]...), s.levels[lvl+1]...)
		s.mu.Unlock()

		bottom := lvl+1 == s.opts.MaxLevels-1
		merged, droppedTomb := mergeTables(victims, bottom)
		t := newSSTable(s.nextTableID.Add(1), merged)
		s.compactionBytes.Add(t.bytes)
		s.compactions.Add(1)
		persisted := true
		if s.opts.Dir != "" {
			if err := t.persist(s.fs, s.opts.Dir, s.tablePath(t.id)); err != nil {
				t.path = ""
				persisted = false
			}
		}
		if droppedTomb > 0 {
			for {
				cur := s.tombFloor.Load()
				if droppedTomb <= cur || s.tombFloor.CompareAndSwap(cur, droppedTomb) {
					break
				}
			}
		}
		s.mu.Lock()
		s.levels[lvl] = nil
		s.levels[lvl+1] = []*sstable{t}
		if !persisted {
			s.persistFailed = true
		}
		s.mu.Unlock()
		// Remove victim files only once the merged table is durably on
		// disk; otherwise a crash would lose both.
		if persisted {
			removed := false
			for _, v := range victims {
				if v.path != "" {
					_ = s.fs.Remove(v.path)
					removed = true
				}
			}
			if removed {
				_ = s.fs.SyncDir(s.opts.Dir)
			}
		}
	}
}

// Scan merges live pairs in [start, end) from every source in key order.
func (s *Store) Scan(start, end []byte, limit int) ([]store.KV, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, store.ErrClosed
	}
	best, err := s.collectLocked(start, end)
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(best))
	for k, e := range best {
		if e.tombstone {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]store.KV, len(keys))
	for i, k := range keys {
		e := best[k]
		out[i] = store.KV{Key: []byte(k), Value: e.value, Version: e.version}
	}
	return out, nil
}

// collectLocked gathers the best (highest-version) record per key in
// [start, end), tombstones included. Caller holds mu.
func (s *Store) collectLocked(start, end []byte) (map[string]sstEntry, error) {
	best := map[string]sstEntry{}
	collect := func(e sstEntry) {
		if cur, ok := best[string(e.key)]; !ok || e.version > cur.version {
			best[string(e.key)] = e
		}
	}
	memCollect := func(m *btree.Store) error {
		return m.ScanAll(start, end, func(k, v []byte, ver uint64, tomb bool) error {
			collect(sstEntry{
				key:       append([]byte(nil), k...),
				value:     append([]byte(nil), v...),
				version:   ver,
				tombstone: tomb,
			})
			return nil
		})
	}
	if err := memCollect(s.mem); err != nil {
		return nil, err
	}
	for _, m := range s.imm {
		if err := memCollect(m.mem); err != nil {
			return nil, err
		}
	}
	for _, level := range s.levels {
		for _, t := range level {
			_ = t.scanRange(start, end, func(e sstEntry) error {
				collect(e)
				return nil
			})
		}
	}
	return best, nil
}

// Len returns the number of live keys (a full merge count).
func (s *Store) Len() int {
	n := 0
	_ = s.Snapshot(func(store.KV) error { n++; return nil })
	return n
}

// Snapshot calls fn for every live pair in key order.
func (s *Store) Snapshot(fn func(store.KV) error) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return store.ErrClosed
	}
	s.mu.RUnlock()
	kvs, err := s.Scan(nil, nil, 0)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		if err := fn(kv); err != nil {
			return err
		}
	}
	return nil
}

// MaxVersion returns the highest version assigned or observed.
func (s *Store) MaxVersion() uint64 { return s.maxVer.Load() }

// RecoveredVersion returns the version watermark recovered at Open (from
// sstables plus WAL replay); 0 when the store started empty.
func (s *Store) RecoveredVersion() uint64 { return s.recoveredVer }

// SnapshotSince calls fn for every record — live or tombstone — with
// version > since, in key order. ok is false when bottom-level compaction
// has already dropped tombstones newer than since, in which case the
// caller must fall back to a full export.
func (s *Store) SnapshotSince(since uint64, fn func(kv store.KV, tombstone bool) error) (bool, error) {
	if since < s.tombFloor.Load() {
		return false, nil
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return false, store.ErrClosed
	}
	best, err := s.collectLocked(nil, nil)
	s.mu.RUnlock()
	if err != nil {
		return false, err
	}
	keys := make([]string, 0, len(best))
	for k, e := range best {
		if e.version > since {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := best[k]
		if err := fn(store.KV{Key: []byte(k), Value: e.value, Version: e.version}, e.tombstone); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Stats reports flush/compaction activity for ablation benches.
type Stats struct {
	Flushes         int64
	Compactions     int64
	CompactionBytes int64
	Tables          int
}

// Stats returns a snapshot of compaction counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	tables := 0
	for _, level := range s.levels {
		tables += len(level)
	}
	s.mu.RUnlock()
	return Stats{
		Flushes:         s.flushes.Load(),
		Compactions:     s.compactions.Load(),
		CompactionBytes: s.compactionBytes.Load(),
		Tables:          tables,
	}
}

// WAL exposes the underlying log for white-box tests; nil unless Durable.
func (s *Store) WAL() *wal.Log { return s.wal }

// Flush forces the current memtable to disk-level tables and compacts.
func (s *Store) Flush() {
	s.mu.Lock()
	if s.mem.Items() > 0 {
		s.sealMemLocked()
	}
	s.mu.Unlock()
	s.flushAndCompact()
}

// Close stops background compaction and, when the store has a directory,
// flushes the memtable so a clean shutdown never loses data. In durable
// mode the WAL is reset once everything reached sstables (or kept intact
// if any persist failed) and closed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.doneCh)
	s.bg.Wait()
	if s.opts.Dir != "" {
		s.mu.Lock()
		if s.mem.Items() > 0 {
			s.sealMemLocked()
		}
		s.mu.Unlock()
		s.flushAndCompact()
	}
	if s.wal != nil {
		s.mu.Lock()
		clean := !s.persistFailed && len(s.imm) == 0
		s.mu.Unlock()
		if clean {
			// Everything is in fsynced sstables; the log is obsolete.
			_ = s.wal.Reset()
		}
		return s.wal.Close()
	}
	return nil
}

var (
	_ store.Engine           = (*Store)(nil)
	_ store.Versioned        = (*Store)(nil)
	_ store.Recovered        = (*Store)(nil)
	_ store.DeltaSnapshotter = (*Store)(nil)
)
