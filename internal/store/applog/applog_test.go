package applog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bespokv/internal/store"
	"bespokv/internal/store/enginetest"
)

func TestConformanceMemory(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine {
		s, err := New(Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestConformanceDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("disk conformance in -short mode")
	}
	enginetest.Run(t, func(t *testing.T) store.Engine {
		s, err := New(Options{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestRecoveryReplaysLog(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%03d", i)
		if _, err := s.Put([]byte(k), []byte("v"+k), 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete([]byte("k000"), 0)
	s.Put([]byte("k001"), []byte("updated"), 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 99 {
		t.Fatalf("recovered Len=%d, want 99", re.Len())
	}
	if _, _, ok, _ := re.Get([]byte("k000")); ok {
		t.Fatal("deleted key resurrected by replay")
	}
	v, _, ok, _ := re.Get([]byte("k001"))
	if !ok || string(v) != "updated" {
		t.Fatalf("k001 = (%q,%v) after replay", v, ok)
	}
	v, _, ok, _ = re.Get([]byte("k099"))
	if !ok || string(v) != "vk099" {
		t.Fatalf("k099 = (%q,%v) after replay", v, ok)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("good"), []byte("value"), 0)
	s.Close()

	// Append garbage emulating a torn write at the tail.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(matches) != 1 {
		t.Fatalf("want 1 segment, got %v", matches)
	}
	f, err := os.OpenFile(matches[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}) // claims 16-byte body, truncated
	f.Close()

	re, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatalf("replay must survive torn tail: %v", err)
	}
	defer re.Close()
	v, _, ok, _ := re.Get([]byte("good"))
	if !ok || string(v) != "value" {
		t.Fatalf("intact record lost: (%q,%v)", v, ok)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir, SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if _, err := s.Put([]byte(k), make([]byte, 100), 0); err != nil {
			t.Fatal(err)
		}
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(matches) < 5 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(matches))
	}
	// All keys still readable across segments.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if _, _, ok, err := s.Get([]byte(k)); err != nil || !ok {
			t.Fatalf("Get(%q) after rotation: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestCompactShrinksAndPreservesData(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Overwrite the same keys many times to accumulate garbage.
	for round := 0; round < 20; round++ {
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("k%02d", i)
			if _, err := s.Put([]byte(k), []byte(fmt.Sprintf("r%02d", round)), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Delete([]byte("k00"), 0)
	if s.GarbageRatio() < 0.5 {
		t.Fatalf("expected garbage, ratio=%f", s.GarbageRatio())
	}
	before, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(after) >= len(before) {
		t.Fatalf("compaction did not shrink: %d -> %d segments", len(before), len(after))
	}
	if s.GarbageRatio() != 0 {
		t.Fatalf("garbage after compaction: %f", s.GarbageRatio())
	}
	if _, _, ok, _ := s.Get([]byte("k00")); ok {
		t.Fatal("deleted key visible after compaction")
	}
	for i := 1; i < 20; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, _, ok, err := s.Get([]byte(k))
		if err != nil || !ok || string(v) != "r19" {
			t.Fatalf("Get(%q) after compaction = (%q,%v,%v)", k, v, ok, err)
		}
	}
	if s.Len() != 19 {
		t.Fatalf("Len=%d after compaction, want 19", s.Len())
	}
}

func TestCompactionSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir, SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i%10)), []byte(fmt.Sprintf("v%02d", i)), 0)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("post"), []byte("compact"), 0)
	s.Close()

	re, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 11 {
		t.Fatalf("Len=%d after replaying compacted log, want 11", re.Len())
	}
	v, _, ok, _ := re.Get([]byte("post"))
	if !ok || string(v) != "compact" {
		t.Fatalf("post-compaction write lost: (%q,%v)", v, ok)
	}
}

func TestAutoCompaction(t *testing.T) {
	s, err := New(Options{SegmentSize: 8 << 10, AutoCompactRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Overwrite a tiny key set far past the check interval so garbage
	// dominates and the auto-compactor must fire.
	for i := 0; i < 3*autoCompactEvery; i++ {
		k := []byte(fmt.Sprintf("k%02d", i%16))
		if _, err := s.Put(k, make([]byte, 64), 0); err != nil {
			t.Fatal(err)
		}
	}
	if ratio := s.GarbageRatio(); ratio > 0.6 {
		t.Fatalf("auto-compaction never fired: garbage ratio %.2f", ratio)
	}
	for i := 0; i < 16; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if _, _, ok, err := s.Get(k); err != nil || !ok {
			t.Fatalf("Get(%s) after auto-compaction: ok=%v err=%v", k, ok, err)
		}
	}
	if s.Len() != 16 {
		t.Fatalf("Len=%d after auto-compaction, want 16", s.Len())
	}
}

func TestAutoCompactionDisabledByDefault(t *testing.T) {
	s, err := New(Options{SegmentSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2*autoCompactEvery; i++ {
		s.Put([]byte("same"), make([]byte, 32), 0)
	}
	if ratio := s.GarbageRatio(); ratio < 0.9 {
		t.Fatalf("compaction ran without being enabled: ratio %.2f", ratio)
	}
}

func BenchmarkPutMemory(b *testing.B) {
	s, _ := New(Options{})
	defer s.Close()
	val := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key-%09d", i))
		s.Put(k, val, 0)
	}
}

func BenchmarkGetMemory(b *testing.B) {
	s, _ := New(Options{})
	defer s.Close()
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), make([]byte, 32), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("key-%09d", i%n)))
	}
}

// TestRecoveryTruncatesMidSegmentCorruption flips a byte inside a record
// in the middle of the segment: replay must verify every record's CRC,
// keep the intact prefix, physically truncate the segment at the first
// bad record, and keep working for new writes afterwards.
func TestRecoveryTruncatesMidSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	matches, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(matches) != 1 {
		t.Fatalf("want 1 segment, got %v", matches)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a body byte roughly halfway in (not a length header, so the
	// frame walk still lines up and the CRC is what catches it).
	raw[len(raw)/2+recordHeaderSize] ^= 0xff
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatalf("replay must survive mid-segment corruption: %v", err)
	}
	// The segment must now be physically shorter than the corrupt image.
	st, err := os.Stat(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(len(raw)) {
		t.Fatalf("segment not truncated: %d bytes, corrupt image was %d", st.Size(), len(raw))
	}
	// The prefix before the corruption survives intact.
	if v, _, ok, _ := re.Get([]byte("k00")); !ok || string(v) != "v0" {
		t.Fatalf("k00 = (%q,%v), want intact prefix", v, ok)
	}
	n := re.Len()
	if n == 0 || n >= 20 {
		t.Fatalf("Len after truncation = %d, want a proper prefix (0 < n < 20)", n)
	}
	// New writes append cleanly after the repair and survive a replay.
	if _, err := re.Put([]byte("post"), []byte("repair"), 0); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if v, _, ok, _ := re2.Get([]byte("post")); !ok || string(v) != "repair" {
		t.Fatalf("post-repair write lost: (%q,%v)", v, ok)
	}
	if got := re2.Len(); got != n+1 {
		t.Fatalf("Len after repair+write = %d, want %d", got, n+1)
	}
}
