package applog

import (
	"fmt"
	"os"
	"sync"
)

// fileSegment is a log extent backed by one append-only file.
type fileSegment struct {
	mu   sync.Mutex
	f    *os.File
	path string
	end  int64
}

func openFileSegment(path string) (*fileSegment, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileSegment{f: f, path: path, end: st.Size()}, nil
}

func (s *fileSegment) append(rec []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	off := s.end
	if _, err := s.f.WriteAt(rec, off); err != nil {
		return 0, err
	}
	s.end += int64(len(rec))
	return off, nil
}

func (s *fileSegment) readAt(p []byte, off int64) error {
	n, err := s.f.ReadAt(p, off)
	if err != nil {
		return err
	}
	if n != len(p) {
		return fmt.Errorf("applog: short read %d/%d at %d", n, len(p), off)
	}
	return nil
}

func (s *fileSegment) size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

func (s *fileSegment) truncate(off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off >= s.end {
		return nil
	}
	if err := s.f.Truncate(off); err != nil {
		return err
	}
	s.end = off
	return nil
}

func (s *fileSegment) close() error  { return s.f.Close() }
func (s *fileSegment) remove() error { return os.Remove(s.path) }

// memSegment is a log extent backed by an in-memory byte slice, used when
// the store is opened without a directory.
type memSegment struct {
	mu  sync.RWMutex
	buf []byte
}

func (s *memSegment) append(rec []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	off := int64(len(s.buf))
	s.buf = append(s.buf, rec...)
	return off, nil
}

func (s *memSegment) readAt(p []byte, off int64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if off < 0 || off+int64(len(p)) > int64(len(s.buf)) {
		return fmt.Errorf("applog: read [%d,%d) outside segment of %d bytes", off, off+int64(len(p)), len(s.buf))
	}
	copy(p, s.buf[off:])
	return nil
}

func (s *memSegment) size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.buf))
}

func (s *memSegment) truncate(off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < int64(len(s.buf)) {
		s.buf = s.buf[:off]
	}
	return nil
}

func (s *memSegment) close() error  { return nil }
func (s *memSegment) remove() error { return nil }
