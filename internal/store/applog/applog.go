// Package applog implements the tLog datalet engine: a persistent
// append-only log with an in-memory hash index, the paper's tLog
// ("a persistent log-structured store that uses tHT as the in-memory
// index"). Every write is appended to the active segment; the index maps
// keys to segment offsets, so Gets pay one random read against the log.
// Recovery replays segments in order. Compact rewrites the live set into a
// fresh segment when garbage accumulates.
//
// With a directory the log lives in numbered segment files; with an empty
// directory it lives in in-memory segments, which keeps the same code path
// (offsets, replay, compaction) testable and benchable without a disk.
package applog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"bespokv/internal/store"
)

const (
	flagTombstone = 1 << 0
	// defaultSegmentSize rotates segments at 8 MiB.
	defaultSegmentSize = 8 << 20
	recordHeaderSize   = 4 + 4 // length + crc
)

// segment abstracts one log extent: file-backed or memory-backed.
type segment interface {
	append(rec []byte) (offset int64, err error)
	readAt(p []byte, off int64) error
	size() int64
	// truncate discards everything at and after off, repairing a torn or
	// corrupt tail so later appends extend a clean log.
	truncate(off int64) error
	close() error
	remove() error
}

type indexEntry struct {
	seg       int // index into Store.segs
	offset    int64
	length    int
	version   uint64
	tombstone bool
}

// Store is the append-only log engine.
type Store struct {
	mu        sync.RWMutex
	dir       string
	segSize   int64
	autoRatio float64
	segs      []segment
	segIDs    []int // on-disk numeric IDs, parallel to segs
	nextID    int
	index     map[string]indexEntry
	writes    int // since the last auto-compaction check
	live      int
	garbage   int // dead records (superseded or tombstoned)
	maxVer    uint64
	// recoveredVer is the watermark captured at the end of open-time
	// replay; rejoin uses it to request a delta of newer writes.
	recoveredVer uint64
	closed       bool
}

// Options configure the engine.
type Options struct {
	// Dir is the segment directory; empty selects in-memory segments.
	Dir string
	// SegmentSize overrides the rotation threshold (bytes).
	SegmentSize int64
	// AutoCompactRatio triggers an inline compaction when the fraction of
	// dead records exceeds it (checked every autoCompactEvery writes once
	// at least two segments exist); 0 disables auto-compaction.
	AutoCompactRatio float64
}

// autoCompactEvery bounds how often the garbage ratio is evaluated so the
// check stays off the per-write hot path.
const autoCompactEvery = 1024

// New opens (or creates) a log store, replaying any existing segments.
func New(opts Options) (*Store, error) {
	s := &Store{
		dir:       opts.Dir,
		segSize:   opts.SegmentSize,
		autoRatio: opts.AutoCompactRatio,
		index:     make(map[string]indexEntry),
	}
	if s.segSize <= 0 {
		s.segSize = defaultSegmentSize
	}
	if s.dir != "" {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return nil, err
		}
		if err := s.loadSegments(); err != nil {
			return nil, err
		}
	}
	if len(s.segs) == 0 {
		if err := s.rotateLocked(); err != nil {
			return nil, err
		}
	}
	s.recoveredVer = s.maxVer
	return s, nil
}

// Name reports "applog".
func (s *Store) Name() string { return "applog" }

func (s *Store) loadSegments() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(name, ".seg"))
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		seg, err := openFileSegment(s.segPath(id))
		if err != nil {
			return err
		}
		s.segs = append(s.segs, seg)
		s.segIDs = append(s.segIDs, id)
		if id >= s.nextID {
			s.nextID = id + 1
		}
		if err := s.replaySegment(len(s.segs) - 1); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%08d.seg", id))
}

// replaySegment scans records in segment si rebuilding the index. Every
// record's CRC is verified; at the first torn or corrupt record the
// segment is truncated there, so the bad suffix is physically discarded
// and later appends extend a log whose replayable prefix matches its
// bytes on disk.
func (s *Store) replaySegment(si int) error {
	seg := s.segs[si]
	var off int64
	var hdr [recordHeaderSize]byte
	for off < seg.size() {
		if seg.size()-off < recordHeaderSize {
			return seg.truncate(off) // torn header at the tail
		}
		if err := seg.readAt(hdr[:], off); err != nil {
			return fmt.Errorf("applog: replay header at %d: %w", off, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(n) > seg.size()-off-recordHeaderSize {
			// Torn tail write: the record was never fully persisted.
			return seg.truncate(off)
		}
		body := make([]byte, n)
		if err := seg.readAt(body, off+recordHeaderSize); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(body) != wantCRC {
			return seg.truncate(off) // torn or corrupt record
		}
		key, _, version, flags, err := decodeBody(body)
		if err != nil {
			return err
		}
		s.applyIndex(string(key), indexEntry{
			seg:       si,
			offset:    off,
			length:    recordHeaderSize + int(n),
			version:   version,
			tombstone: flags&flagTombstone != 0,
		})
		off += recordHeaderSize + int64(n)
	}
	return nil
}

// applyIndex installs e for key under LWW rules, maintaining counters.
func (s *Store) applyIndex(key string, e indexEntry) bool {
	old, exists := s.index[key]
	if exists && e.version < old.version {
		s.garbage++
		return false
	}
	if exists {
		s.garbage++
		if !old.tombstone {
			s.live--
		}
	}
	if !e.tombstone {
		s.live++
	}
	s.index[key] = e
	if e.version > s.maxVer {
		s.maxVer = e.version
	}
	return true
}

func encodeBody(key, value []byte, version uint64, flags uint8) []byte {
	body := make([]byte, 0, 16+len(key)+len(value))
	body = binary.AppendUvarint(body, version)
	body = append(body, flags)
	body = binary.AppendUvarint(body, uint64(len(key)))
	body = append(body, key...)
	body = binary.AppendUvarint(body, uint64(len(value)))
	body = append(body, value...)
	return body
}

func decodeBody(body []byte) (key, value []byte, version uint64, flags uint8, err error) {
	version, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, nil, 0, 0, fmt.Errorf("applog: corrupt record version")
	}
	body = body[n:]
	if len(body) < 1 {
		return nil, nil, 0, 0, fmt.Errorf("applog: corrupt record flags")
	}
	flags = body[0]
	body = body[1:]
	klen, n := binary.Uvarint(body)
	if n <= 0 || klen > uint64(len(body)-n) {
		return nil, nil, 0, 0, fmt.Errorf("applog: corrupt key length")
	}
	body = body[n:]
	key = body[:klen]
	body = body[klen:]
	vlen, n := binary.Uvarint(body)
	if n <= 0 || vlen > uint64(len(body)-n) {
		return nil, nil, 0, 0, fmt.Errorf("applog: corrupt value length")
	}
	value = body[n : n+int(vlen)]
	return key, value, version, flags, nil
}

// rotateLocked opens a fresh active segment. Caller holds mu (or is init).
func (s *Store) rotateLocked() error {
	id := s.nextID
	s.nextID++
	if s.dir == "" {
		s.segs = append(s.segs, &memSegment{})
		s.segIDs = append(s.segIDs, id)
		return nil
	}
	seg, err := openFileSegment(s.segPath(id))
	if err != nil {
		return err
	}
	s.segs = append(s.segs, seg)
	s.segIDs = append(s.segIDs, id)
	return nil
}

func (s *Store) appendLocked(key, value []byte, version uint64, flags uint8) (indexEntry, error) {
	active := len(s.segs) - 1
	if s.segs[active].size() >= s.segSize {
		if err := s.rotateLocked(); err != nil {
			return indexEntry{}, err
		}
		active = len(s.segs) - 1
	}
	body := encodeBody(key, value, version, flags)
	rec := make([]byte, recordHeaderSize+len(body))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(body))
	copy(rec[recordHeaderSize:], body)
	off, err := s.segs[active].append(rec)
	if err != nil {
		return indexEntry{}, err
	}
	return indexEntry{
		seg:       active,
		offset:    off,
		length:    len(rec),
		version:   version,
		tombstone: flags&flagTombstone != 0,
	}, nil
}

// Put appends a record and indexes it under LWW semantics.
func (s *Store) Put(key, value []byte, version uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, store.ErrClosed
	}
	if version == 0 {
		version = s.maxVer + 1
	}
	if old, ok := s.index[string(key)]; ok && version < old.version {
		return old.version, nil
	}
	e, err := s.appendLocked(key, value, version, 0)
	if err != nil {
		return 0, err
	}
	s.applyIndex(string(key), e)
	s.maybeAutoCompactLocked()
	return version, nil
}

// maybeAutoCompactLocked runs an inline compaction when garbage crossed
// the configured ratio. Caller holds mu. Compaction failure is not fatal:
// the log keeps appending and the next check retries.
func (s *Store) maybeAutoCompactLocked() {
	if s.autoRatio <= 0 {
		return
	}
	s.writes++
	if s.writes < autoCompactEvery || len(s.segs) < 2 {
		return
	}
	s.writes = 0
	total := len(s.index) + s.garbage
	if total == 0 || float64(s.garbage)/float64(total) < s.autoRatio {
		return
	}
	_ = s.compactLocked()
}

// Get reads the indexed record for key back from its segment.
func (s *Store) Get(key []byte) ([]byte, uint64, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, 0, false, store.ErrClosed
	}
	e, ok := s.index[string(key)]
	if !ok || e.tombstone {
		return nil, 0, false, nil
	}
	value, err := s.readValueLocked(e)
	if err != nil {
		return nil, 0, false, err
	}
	return value, e.version, true, nil
}

func (s *Store) readValueLocked(e indexEntry) ([]byte, error) {
	body := make([]byte, e.length-recordHeaderSize)
	if err := s.segs[e.seg].readAt(body, e.offset+recordHeaderSize); err != nil {
		return nil, err
	}
	_, value, _, _, err := decodeBody(body)
	if err != nil {
		return nil, err
	}
	return store.CloneBytes(value), nil
}

// Delete appends a tombstone record under LWW semantics.
func (s *Store) Delete(key []byte, version uint64) (bool, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, 0, store.ErrClosed
	}
	if version == 0 {
		version = s.maxVer + 1
	}
	old, exists := s.index[string(key)]
	if exists && version < old.version {
		return !old.tombstone, old.version, nil
	}
	e, err := s.appendLocked(key, nil, version, flagTombstone)
	if err != nil {
		return false, 0, err
	}
	s.applyIndex(string(key), e)
	s.maybeAutoCompactLocked()
	return exists && !old.tombstone, version, nil
}

// Scan returns live pairs with start <= key < end in key order, up to
// limit — sorted-at-snapshot over the hash index (same approach as
// ht.Store.Scan): matching keys are collected and sorted under the read
// lock, and only the first limit values are read back from their segments.
func (s *Store) Scan(start, end []byte, limit int) ([]store.KV, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, store.ErrClosed
	}
	keys := make([]string, 0, 64)
	for k, e := range s.index {
		if e.tombstone || !store.InRange([]byte(k), start, end) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys) // bytewise order, same as bytes.Compare
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]store.KV, 0, len(keys))
	for _, k := range keys {
		e := s.index[k]
		value, err := s.readValueLocked(e)
		if err != nil {
			return nil, err
		}
		out = append(out, store.KV{Key: []byte(k), Value: value, Version: e.version})
	}
	return out, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// Snapshot calls fn for every live pair (hash order).
func (s *Store) Snapshot(fn func(store.KV) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return store.ErrClosed
	}
	for k, e := range s.index {
		if e.tombstone {
			continue
		}
		value, err := s.readValueLocked(e)
		if err != nil {
			return err
		}
		if err := fn(store.KV{Key: []byte(k), Value: value, Version: e.version}); err != nil {
			return err
		}
	}
	return nil
}

// GarbageRatio reports the fraction of indexed history that is dead.
func (s *Store) GarbageRatio() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := len(s.index) + s.garbage
	if total == 0 {
		return 0
	}
	return float64(s.garbage) / float64(total)
}

// Compact rewrites the live set (and surviving tombstones) into fresh
// segments and removes the old ones.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.ErrClosed
	}
	return s.compactLocked()
}

// compactLocked does the rewrite; caller holds mu.
func (s *Store) compactLocked() error {
	oldSegs := s.segs
	oldIDs := s.segIDs
	s.segs = nil
	s.segIDs = nil
	if err := s.rotateLocked(); err != nil {
		s.segs = oldSegs
		s.segIDs = oldIDs
		return err
	}
	newIndex := make(map[string]indexEntry, len(s.index))
	for k, e := range s.index {
		var value []byte
		if !e.tombstone {
			body := make([]byte, e.length-recordHeaderSize)
			if err := oldSegs[e.seg].readAt(body, e.offset+recordHeaderSize); err != nil {
				return err
			}
			_, v, _, _, err := decodeBody(body)
			if err != nil {
				return err
			}
			value = v
		}
		var flags uint8
		if e.tombstone {
			flags = flagTombstone
		}
		ne, err := s.appendLocked([]byte(k), value, e.version, flags)
		if err != nil {
			return err
		}
		newIndex[k] = ne
	}
	s.index = newIndex
	s.garbage = 0
	for _, seg := range oldSegs {
		_ = seg.close()
		_ = seg.remove()
	}
	return nil
}

// Close closes all segments.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, seg := range s.segs {
		_ = seg.close()
	}
	return nil
}

// MaxVersion returns the highest version assigned or observed.
func (s *Store) MaxVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maxVer
}

// RecoveredVersion returns the watermark captured at the end of open-time
// replay; 0 for stores that started empty.
func (s *Store) RecoveredVersion() uint64 { return s.recoveredVer }

// SnapshotSince calls fn for every record — live or tombstone — with
// version > since. The index keeps tombstones (and Compact rewrites
// them), so the log can always serve a complete delta (ok is always true).
func (s *Store) SnapshotSince(since uint64, fn func(kv store.KV, tombstone bool) error) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, store.ErrClosed
	}
	for k, e := range s.index {
		if e.version <= since {
			continue
		}
		var value []byte
		if !e.tombstone {
			v, err := s.readValueLocked(e)
			if err != nil {
				return true, err
			}
			value = v
		}
		if err := fn(store.KV{Key: []byte(k), Value: value, Version: e.version}, e.tombstone); err != nil {
			return true, err
		}
	}
	return true, nil
}

var (
	_ store.Engine           = (*Store)(nil)
	_ store.Versioned        = (*Store)(nil)
	_ store.Recovered        = (*Store)(nil)
	_ store.DeltaSnapshotter = (*Store)(nil)
)
