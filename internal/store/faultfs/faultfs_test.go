package faultfs

import (
	"errors"
	"fmt"
	"testing"

	"bespokv/internal/store/wal"
)

func TestCrashDropsUnsyncedWrites(t *testing.T) {
	fs := New(1)
	f, err := fs.OpenFile("d/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("-volatile"), 7); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	f2, err := fs.OpenFile("d/f")
	if err != nil {
		t.Fatal(err)
	}
	size, err := f2.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != 7 {
		t.Fatalf("size after crash = %d, want 7 (volatile tail dropped)", size)
	}
	buf := make([]byte, 7)
	if _, err := f2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable" {
		t.Fatalf("content after crash = %q", buf)
	}
}

func TestCrashUnlinksNeverSyncedFiles(t *testing.T) {
	fs := New(1)
	if _, err := fs.OpenFile("d/ghost"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	names, err := fs.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("never-synced file survived crash: %v", names)
	}
}

func TestRenameDurabilityNeedsSyncDir(t *testing.T) {
	fs := New(1)
	f, _ := fs.OpenFile("d/x.tmp")
	f.WriteAt([]byte("payload"), 0)
	f.Sync()
	if err := fs.Rename("d/x.tmp", "d/x"); err != nil {
		t.Fatal(err)
	}
	// Crash before SyncDir: the rename is lost; old path comes back.
	fs.Crash()
	names, _ := fs.ReadDir("d")
	if len(names) != 1 || names[0] != "x.tmp" {
		t.Fatalf("after crash without SyncDir: %v, want [x.tmp]", names)
	}

	// Redo with SyncDir: the rename survives.
	if err := fs.Rename("d/x.tmp", "d/x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	names, _ = fs.ReadDir("d")
	if len(names) != 1 || names[0] != "x" {
		t.Fatalf("after crash with SyncDir: %v, want [x]", names)
	}
	g, _ := fs.OpenFile("d/x")
	buf := make([]byte, 7)
	if _, err := g.ReadAt(buf, 0); err != nil || string(buf) != "payload" {
		t.Fatalf("renamed content = %q err %v", buf, err)
	}
}

func TestRemoveDurabilityNeedsSyncDir(t *testing.T) {
	fs := New(1)
	f, _ := fs.OpenFile("d/f")
	f.WriteAt([]byte("data"), 0)
	f.Sync()
	if err := fs.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	fs.Crash() // remove not yet durable: file resurrects
	if names, _ := fs.ReadDir("d"); len(names) != 1 {
		t.Fatalf("removed-without-SyncDir file did not resurrect: %v", names)
	}
	if err := fs.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if names, _ := fs.ReadDir("d"); len(names) != 0 {
		t.Fatalf("durably removed file survived crash: %v", names)
	}
}

func TestFreezeSwallowsMutations(t *testing.T) {
	fs := New(1)
	f, _ := fs.OpenFile("d/f")
	f.WriteAt([]byte("before"), 0)
	f.Sync()
	fs.Freeze()
	if _, err := f.WriteAt([]byte("AFTERAFTER"), 0); err != nil {
		t.Fatalf("frozen write should no-op, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("frozen sync should no-op, got %v", err)
	}
	if err := fs.Remove("d/f"); err != nil {
		t.Fatalf("frozen remove should no-op, got %v", err)
	}
	fs.Crash()
	if fs.Frozen() {
		t.Fatal("Crash should unfreeze")
	}
	g, _ := fs.OpenFile("d/f")
	buf := make([]byte, 6)
	if _, err := g.ReadAt(buf, 0); err != nil || string(buf) != "before" {
		t.Fatalf("post-crash content = %q err %v, want pre-freeze state", buf, err)
	}
}

func TestInjectedWriteAndSyncErrors(t *testing.T) {
	fs := New(1)
	f, _ := fs.OpenFile("d/f")
	fs.FailWrites(2, ErrInjected)
	for i := 0; i < 2; i++ {
		if _, err := f.WriteAt([]byte("x"), int64(i)); err != nil {
			t.Fatalf("write %d before countdown: %v", i, err)
		}
	}
	if _, err := f.WriteAt([]byte("x"), 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after countdown: %v, want injected", err)
	}
	fs.FailWrites(-1, nil)
	if _, err := f.WriteAt([]byte("x"), 2); err != nil {
		t.Fatalf("write after clearing injection: %v", err)
	}
	fs.FailSyncs(0, ErrInjected)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: %v, want injected", err)
	}
	if err := fs.SyncDir("d"); !errors.Is(err, ErrInjected) {
		t.Fatalf("syncdir: %v, want injected", err)
	}
	fs.FailSyncs(-1, nil)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestWALOverFaultFS drives the real WAL against the fault filesystem:
// acked (fsynced) appends survive a crash, volatile ones don't exist by
// construction (Append only returns after sync), and a torn crash leaves
// a consistent prefix.
func TestWALOverFaultFS(t *testing.T) {
	fs := New(42)
	l, err := wal.Open(wal.Options{Dir: "node/wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var acked []string
	for i := 0; i < 25; i++ {
		body := fmt.Sprintf("op-%03d", i)
		if _, err := l.Append([]byte(body)); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, body)
	}
	// kill -9: freeze so Close can't flush, then crash.
	fs.Freeze()
	l.Close()
	fs.Crash()

	l2, err := wal.Open(wal.Options{Dir: "node/wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := l2.Replay(func(body []byte) error {
		got = append(got, string(body))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) < len(acked) {
		t.Fatalf("lost acked records: replayed %d, acked %d", len(got), len(acked))
	}
	for i, want := range acked {
		if got[i] != want {
			t.Fatalf("record %d = %q, want %q", i, got[i], want)
		}
	}
	l2.Close()
}

func TestWALTornCrashRecoversPrefix(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		fs := New(seed)
		l, err := wal.Open(wal.Options{Dir: "node/wal", FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Replay(func([]byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("op-%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
		fs.Freeze()
		l.Close()
		fs.CrashTorn()

		l2, err := wal.Open(wal.Options{Dir: "node/wal", FS: fs})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		count := 0
		if err := l2.Replay(func(body []byte) error {
			want := fmt.Sprintf("op-%03d", count)
			if string(body) != want {
				t.Fatalf("seed %d: record %d = %q, want %q (not a prefix)", seed, count, body, want)
			}
			count++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count < 20 {
			t.Fatalf("seed %d: torn crash lost acked records: %d/20", seed, count)
		}
		l2.Close()
	}
}
