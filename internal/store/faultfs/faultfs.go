// Package faultfs is a seeded fault-injecting wal.FS — the storage
// analogue of faultnet. It models the two-level durability contract of a
// real filesystem: every mutation lands in *live* state immediately, but
// only file Sync (content + existence at that path) and SyncDir (renames
// and removes) promote it to the *durable* image. Crash() replaces live
// state with the durable image, exactly as a kill -9 plus power cut
// would; Freeze() makes all subsequent mutations silent no-ops so an
// in-process "crash" can run graceful Close paths without the close
// adding durability the dead process wouldn't have had. Write and sync
// errors can be injected after a countdown, and CrashTorn() keeps a
// seeded-random prefix of each un-synced tail to fabricate torn final
// records.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"bespokv/internal/store/wal"
)

// FS implements wal.FS with crash and error injection. Safe for
// concurrent use.
type FS struct {
	mu      sync.Mutex
	rng     *rand.Rand
	live    map[string][]byte // current (volatile) filesystem
	durable map[string][]byte // what survives a crash
	dirty   map[string]int    // lowest live offset differing from durable; absent = in sync
	pending []dirOp           // renames/removes awaiting SyncDir
	frozen  bool

	// error injection: countdowns decrement per matching op; once one
	// reaches zero the op fails with the injected error until cleared.
	writeErrAfter int
	writeErr      error
	syncErrAfter  int
	syncErr       error

	// counters
	writes   uint64
	syncs    uint64
	dirSyncs uint64
}

// dirOp is a directory-level mutation not yet made durable. For renames,
// durable content captured at rename time moves with the name (engines
// follow the fsync-file-then-rename-then-fsync-dir discipline, so the
// capture point matches reality).
type dirOp struct {
	remove  bool
	path    string // rename destination, or removed path
	oldPath string // rename source ("" for removes)
	content []byte // durable content travelling with a rename
}

// New returns an empty fault-injecting filesystem. The seed drives torn
// tail lengths in CrashTorn so runs replay deterministically.
func New(seed int64) *FS {
	return &FS{
		rng:     rand.New(rand.NewSource(seed)),
		live:    map[string][]byte{},
		durable: map[string][]byte{},
		dirty:   map[string]int{},
	}
}

// ---- crash plane ----

// Freeze makes every subsequent mutation (writes, truncates, syncs,
// renames, removes) a silent no-op. Reads keep working. Use before
// running an in-process engine Close so graceful-shutdown flushes cannot
// make anything durable past the crash point.
func (fs *FS) Freeze() {
	fs.mu.Lock()
	fs.frozen = true
	fs.mu.Unlock()
}

// Frozen reports whether the filesystem is in the post-Freeze state.
func (fs *FS) Frozen() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.frozen
}

// Crash discards everything volatile — un-fsynced writes, un-SyncDir'd
// renames and removes — reverting to the durable image, and unfreezes.
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashLocked(false)
}

// CrashTorn is Crash but files that had un-fsynced appended bytes keep a
// seeded-random prefix of them, modelling a torn final write caught
// mid-flight by the power cut.
func (fs *FS) CrashTorn() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashLocked(true)
}

func (fs *FS) crashLocked(torn bool) {
	next := make(map[string][]byte, len(fs.durable))
	// Deterministic order so seeded torn lengths replay.
	paths := make([]string, 0, len(fs.durable))
	for p := range fs.durable {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	fs.dirty = map[string]int{}
	for _, p := range paths {
		img := append([]byte(nil), fs.durable[p]...)
		if torn {
			if liveData, ok := fs.live[p]; ok && len(liveData) > len(img) {
				tail := liveData[len(img):]
				keep := fs.rng.Intn(len(tail) + 1)
				if keep > 0 {
					// The surviving torn tail is live-only state again.
					fs.dirty[p] = len(img)
					img = append(img, tail[:keep]...)
				}
			}
		}
		next[p] = img
	}
	fs.live = next
	fs.pending = nil
	fs.frozen = false
	fs.writeErr, fs.syncErr = nil, nil
}

// ---- error injection ----

// FailWrites makes WriteAt fail with err after the next n writes
// (n=0 fails immediately). A negative n clears the injection.
func (fs *FS) FailWrites(n int, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n < 0 {
		fs.writeErr = nil
		return
	}
	fs.writeErrAfter, fs.writeErr = n, err
}

// FailSyncs makes file Sync and SyncDir fail with err after the next n
// syncs (n=0 fails immediately). A negative n clears the injection.
func (fs *FS) FailSyncs(n int, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n < 0 {
		fs.syncErr = nil
		return
	}
	fs.syncErrAfter, fs.syncErr = n, err
}

// Counters reports lifetime write, file-sync, and dir-sync counts.
func (fs *FS) Counters() (writes, syncs, dirSyncs uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes, fs.syncs, fs.dirSyncs
}

// DurableBytes reports the durable image size of path and whether the
// file durably exists. Test instrumentation.
func (fs *FS) DurableBytes(path string) (int, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	b, ok := fs.durable[path]
	return len(b), ok
}

// ---- wal.FS ----

type handle struct {
	fs   *FS
	path string
}

// OpenFile opens path, creating it (live-only until synced) if absent.
func (fs *FS) OpenFile(path string) (wal.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.live[path]; !ok && !fs.frozen {
		fs.live[path] = []byte{}
		fs.markDirtyLocked(path, 0)
	}
	return handle{fs: fs, path: path}, nil
}

// markDirtyLocked lowers path's dirty watermark to off: everything at and
// beyond it must be re-promoted to the durable image on the next Sync.
func (fs *FS) markDirtyLocked(path string, off int) {
	if cur, ok := fs.dirty[path]; !ok || off < cur {
		fs.dirty[path] = off
	}
}

func (h handle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	data, ok := h.fs.live[h.path]
	if !ok {
		return 0, fmt.Errorf("faultfs: read %s: no such file", h.path)
	}
	if off >= int64(len(data)) {
		return 0, fmt.Errorf("faultfs: read %s at %d beyond EOF %d", h.path, off, len(data))
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, fmt.Errorf("faultfs: short read %s %d/%d", h.path, n, len(p))
	}
	return n, nil
}

func (h handle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.frozen {
		return len(p), nil // silently swallowed: the process is dead
	}
	if h.fs.writeErr != nil {
		if h.fs.writeErrAfter <= 0 {
			return 0, h.fs.writeErr
		}
		h.fs.writeErrAfter--
	}
	data, ok := h.fs.live[h.path]
	if !ok {
		return 0, fmt.Errorf("faultfs: write %s: no such file", h.path)
	}
	if need := off + int64(len(p)); need > int64(len(data)) {
		data = append(data, make([]byte, need-int64(len(data)))...)
	}
	copy(data[off:], p)
	h.fs.live[h.path] = data
	h.fs.markDirtyLocked(h.path, int(off))
	h.fs.writes++
	return len(p), nil
}

func (h handle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.frozen {
		return nil
	}
	data, ok := h.fs.live[h.path]
	if !ok {
		return fmt.Errorf("faultfs: truncate %s: no such file", h.path)
	}
	if size < int64(len(data)) {
		h.fs.live[h.path] = data[:size]
		h.fs.markDirtyLocked(h.path, int(size))
	}
	return nil
}

func (h handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.frozen {
		return nil
	}
	if h.fs.syncErr != nil {
		if h.fs.syncErrAfter <= 0 {
			return h.fs.syncErr
		}
		h.fs.syncErrAfter--
	}
	data, ok := h.fs.live[h.path]
	if !ok {
		return fmt.Errorf("faultfs: sync %s: no such file", h.path)
	}
	// Promote only the dirty suffix: a clean prefix is byte-identical in
	// both images, and copying the whole file per sync would make an
	// append-heavy WAL quadratic. Reusing dur's capacity keeps the
	// append-fsync-append pattern amortized O(delta); the backing array is
	// owned exclusively by the durable image (crash, rename and
	// DurableBytes all copy out of it).
	if d, dirtyOK := h.fs.dirty[h.path]; dirtyOK {
		dur := h.fs.durable[h.path]
		if d > len(dur) {
			d = len(dur)
		}
		if d > len(data) {
			d = len(data)
		}
		h.fs.durable[h.path] = append(dur[:d], data[d:]...)
		delete(h.fs.dirty, h.path)
	}
	h.fs.syncs++
	return nil
}

func (h handle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	data, ok := h.fs.live[h.path]
	if !ok {
		return 0, fmt.Errorf("faultfs: size %s: no such file", h.path)
	}
	return int64(len(data)), nil
}

func (h handle) Close() error { return nil }

// ReadDir lists live file names directly inside dir, sorted.
func (fs *FS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for p := range fs.live {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		if !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll is a no-op: directories exist implicitly.
func (fs *FS) MkdirAll(string) error { return nil }

// Rename atomically replaces newPath in live state; durable only after
// SyncDir on the parent directory.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return nil
	}
	data, ok := fs.live[oldPath]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: no such file", oldPath)
	}
	fs.live[newPath] = data
	delete(fs.live, oldPath)
	delete(fs.dirty, oldPath)
	// The destination's live content has no relation to whatever durable
	// image the name held before; resync it from the start.
	fs.dirty[newPath] = 0
	fs.pending = append(fs.pending, dirOp{
		path:    newPath,
		oldPath: oldPath,
		content: append([]byte(nil), fs.durable[oldPath]...),
	})
	return nil
}

// Remove deletes path from live state; durable removal needs SyncDir.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return nil
	}
	if _, ok := fs.live[path]; !ok {
		return fmt.Errorf("faultfs: remove %s: no such file", path)
	}
	delete(fs.live, path)
	delete(fs.dirty, path)
	fs.pending = append(fs.pending, dirOp{remove: true, path: path})
	return nil
}

// SyncDir makes pending renames and removes under dir durable, in order.
func (fs *FS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return nil
	}
	if fs.syncErr != nil {
		if fs.syncErrAfter <= 0 {
			return fs.syncErr
		}
		fs.syncErrAfter--
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	kept := fs.pending[:0]
	for _, op := range fs.pending {
		inDir := strings.HasPrefix(op.path, prefix) || (op.oldPath != "" && strings.HasPrefix(op.oldPath, prefix))
		if !inDir {
			kept = append(kept, op)
			continue
		}
		if op.remove {
			delete(fs.durable, op.path)
			continue
		}
		if _, wasDurable := fs.durable[op.oldPath]; wasDurable || len(op.content) > 0 {
			fs.durable[op.path] = op.content
		} else {
			// Renaming a never-synced file durably creates an empty
			// entry only if the destination previously existed; the
			// safe model is: nothing durable moved, so the crash loses
			// the destination too.
			delete(fs.durable, op.path)
		}
		delete(fs.durable, op.oldPath)
	}
	fs.pending = kept
	fs.dirSyncs++
	return nil
}

var _ wal.FS = (*FS)(nil)

// ErrInjected is a convenience error for tests injecting faults.
var ErrInjected = errors.New("faultfs: injected fault")
