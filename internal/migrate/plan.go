package migrate

import (
	"errors"
	"fmt"
	"sort"

	"bespokv/internal/topology"
)

// Plan is a computed rebalance: the target map plus which shards lose
// keyspace and roughly how much.
type Plan struct {
	// BaseEpoch is the epoch the plan was computed against; the
	// coordinator rejects execution if the map moved underneath it.
	BaseEpoch uint64
	// Target is the post-cutover map (epoch assigned at install time).
	Target *topology.Map
	// Sources are the shard IDs that lose keyspace and must run movers,
	// sorted for determinism.
	Sources []string
	// Transfers is the ring ownership diff backing Sources.
	Transfers []topology.Transfer
	// MovedFraction estimates how much of the keyspace changes hands.
	MovedFraction float64
}

// PlanJoin plans adding one shard to the ring.
func PlanJoin(cur *topology.Map, add topology.Shard) (*Plan, error) {
	if err := checkPlannable(cur); err != nil {
		return nil, err
	}
	if add.ID == "" || len(add.Replicas) == 0 {
		return nil, errors.New("migrate: new shard needs an ID and replicas")
	}
	for _, s := range cur.Shards {
		if s.ID == add.ID {
			return nil, fmt.Errorf("migrate: shard %s already in map", add.ID)
		}
	}
	target := cur.Clone()
	target.Shards = append(target.Shards, add)
	return plan(cur, target)
}

// PlanDrain plans removing one shard; its keyspace spreads over the
// survivors per the consistent-hash ring.
func PlanDrain(cur *topology.Map, shardID string) (*Plan, error) {
	if err := checkPlannable(cur); err != nil {
		return nil, err
	}
	target := cur.Clone()
	kept := target.Shards[:0]
	found := false
	for _, s := range target.Shards {
		if s.ID == shardID {
			found = true
			continue
		}
		kept = append(kept, s)
	}
	if !found {
		return nil, fmt.Errorf("migrate: unknown shard %s", shardID)
	}
	if len(kept) == 0 {
		return nil, errors.New("migrate: cannot drain the last shard")
	}
	target.Shards = kept
	return plan(cur, target)
}

// PlanRebalance plans an arbitrary target shard set (joins and drains in
// one step).
func PlanRebalance(cur *topology.Map, shards []topology.Shard) (*Plan, error) {
	if err := checkPlannable(cur); err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, errors.New("migrate: empty target shard set")
	}
	seen := map[string]bool{}
	for _, s := range shards {
		if s.ID == "" || len(s.Replicas) == 0 {
			return nil, errors.New("migrate: every target shard needs an ID and replicas")
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("migrate: duplicate target shard %s", s.ID)
		}
		seen[s.ID] = true
	}
	target := cur.Clone()
	target.Shards = append([]topology.Shard(nil), shards...)
	return plan(cur, target)
}

func plan(cur, target *topology.Map) (*Plan, error) {
	diff := topology.OwnershipDiff(shardIDs(cur), shardIDs(target), 0)
	srcSet := map[string]bool{}
	for _, t := range diff {
		srcSet[t.From] = true
	}
	sources := make([]string, 0, len(srcSet))
	for id := range srcSet {
		sources = append(sources, id)
	}
	sort.Strings(sources)
	return &Plan{
		BaseEpoch:     cur.Epoch,
		Target:        target,
		Sources:       sources,
		Transfers:     diff,
		MovedFraction: topology.MovedFraction(diff),
	}, nil
}

func checkPlannable(cur *topology.Map) error {
	if cur == nil || len(cur.Shards) == 0 {
		return errors.New("migrate: no current map")
	}
	if cur.Partitioner != topology.HashPartitioner {
		return fmt.Errorf("migrate: only hash-partitioned maps can rebalance (got %q)", cur.Partitioner)
	}
	if cur.Transition != nil {
		return errors.New("migrate: mode transition in flight")
	}
	return nil
}

func shardIDs(m *topology.Map) []string {
	ids := make([]string, len(m.Shards))
	for i, s := range m.Shards {
		ids[i] = s.ID
	}
	return ids
}
