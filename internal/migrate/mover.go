package migrate

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// Backend is the datalet-client surface the mover drives: the source's own
// datalet (snapshot source, GC target) and the destination replicas'
// datalets (snapshot and dual-write sink). *datalet.Pool implements it.
// Pushing straight to destination DATALETS with explicit versions — the
// same idiom standby recovery uses — bypasses the destination controlets'
// mode logic entirely, so one mover serves all four MS/AA × SC/EC modes.
type Backend interface {
	Do(req *wire.Request, resp *wire.Response) error
	DoAsync(req *wire.Request, resp *wire.Response) <-chan error
}

// Config wires a Mover into its controlet.
type Config struct {
	Spec Spec
	// Local reaches the source's own datalet.
	Local Backend
	// Dest resolves a destination replica's datalet connection (the
	// controlet's lazily-dialed peer-datalet pool).
	Dest func(n topology.Node) (Backend, error)
	// Logf receives diagnostics.
	Logf func(format string, args ...any)
}

const (
	// scanBatch is keys per OpScan round while snapshotting.
	scanBatch = 512
	// queueDepth bounds the dual-write catch-up queue; a full queue
	// applies backpressure to the source's write path — bounded memory
	// beats unbounded lag, the same trade the MS+EC propagator makes.
	queueDepth = 8192
	// catchupWorkers drain the queue concurrently. Per-key ordering is not
	// needed: every record carries its LWW version, so two overwrites of
	// the same key delivered out of order still converge to the newer one.
	// Enough workers that steady-state depth stays near zero — the cutover
	// barrier must only drain a shallow queue, keeping the blocked-write
	// window well inside the client retry budget.
	catchupWorkers = 8
)

var errMoverStopped = errors.New("migrate: mover stopped")

// mirrorRec is one acknowledged write waiting for catch-up delivery.
type mirrorRec struct {
	del     bool
	table   string
	key     []byte
	value   []byte
	version uint64
}

// Mover executes one source shard's side of a migration. One lives on
// every replica of the source shard: all of them mirror acknowledged
// writes (any replica can be the acking node, depending on mode), while
// the coordinator elects a single replica to stream the snapshot and runs
// the cutover barrier on each.
type Mover struct {
	cfg    Config
	target *topology.Map
	ring   *topology.Ring
	srcIdx int // source shard's index in target (-1 when drained away)

	phase   atomic.Int32
	barrier atomic.Bool

	queue    chan mirrorRec
	pending  sync.WaitGroup
	pendingN atomic.Int64

	destsMu sync.Mutex
	dests   map[string][]Backend // dest shard ID → replica backends
	tables  map[string]bool      // "shardID\x00table" ensured at dest

	keysMoved  atomic.Uint64
	bytesMoved atomic.Uint64
	dualWrites atomic.Uint64
	keysGCed   atomic.Uint64
	maxVersion atomic.Uint64
	failErr    atomic.Pointer[string]

	phaseGauge *phaseGauge

	stopCh  chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// New validates the spec, arms the dual-write window and starts the
// catch-up deliverer. The caller's write path must begin calling Mirror at
// every ack point as soon as New returns.
func New(cfg Config) (*Mover, error) {
	if cfg.Spec.Target == nil || len(cfg.Spec.Target.Shards) == 0 {
		return nil, errors.New("migrate: spec has no target map")
	}
	if cfg.Spec.ID == "" || cfg.Spec.SourceShard == "" {
		return nil, errors.New("migrate: spec needs ID and SourceShard")
	}
	if cfg.Spec.Target.Partitioner != topology.HashPartitioner {
		return nil, fmt.Errorf("migrate: only hash-partitioned targets supported (got %q)", cfg.Spec.Target.Partitioner)
	}
	if cfg.Local == nil || cfg.Dest == nil {
		return nil, errors.New("migrate: Local and Dest backends required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	m := &Mover{
		cfg:        cfg,
		target:     cfg.Spec.Target.Clone(),
		srcIdx:     -1,
		queue:      make(chan mirrorRec, queueDepth),
		dests:      map[string][]Backend{},
		tables:     map[string]bool{},
		phaseGauge: phaseGaugeFor(cfg.Spec.SourceShard),
		stopCh:     make(chan struct{}),
	}
	m.ring = topology.BuildRing(m.target)
	for i, s := range m.target.Shards {
		if s.ID == cfg.Spec.SourceShard {
			m.srcIdx = i
		}
	}
	m.wg.Add(catchupWorkers)
	for i := 0; i < catchupWorkers; i++ {
		go m.catchupLoop()
	}
	m.setPhase(PhaseDualWrite)
	return m, nil
}

// ID returns the migration run this mover belongs to.
func (m *Mover) ID() string { return m.cfg.Spec.ID }

func (m *Mover) setPhase(p Phase) {
	m.phase.Store(int32(p))
	m.phaseGauge.set(p)
}

// ownerIdx returns key's post-cutover owner shard index.
func (m *Mover) ownerIdx(key []byte) int { return m.target.ShardFor(key, m.ring) }

// Moves reports whether key's post-cutover owner differs from the source
// shard — the filter both the snapshot and the dual-write hook apply. When
// the source shard left the map entirely (drain), every key moves.
func (m *Mover) Moves(key []byte) bool { return m.ownerIdx(key) != m.srcIdx }

// Blocks reports whether a write to key must be refused: set only during
// the cutover barrier, and only for keys that are moving away.
func (m *Mover) Blocks(key []byte) bool {
	return m.barrier.Load() && m.ownerIdx(key) != m.srcIdx
}

// Mirror dual-applies one acknowledged write to its post-cutover owner.
// Called from every mode's ack point while the write handler still holds
// the controlet's inflight read lock, so a cutover (which takes the write
// side as a barrier) cannot drain the queue before every racing Mirror has
// enqueued. Hot-path cost for a key that does not move: one ring lookup.
func (m *Mover) Mirror(del bool, table string, key, value []byte, version uint64) {
	if m.ownerIdx(key) == m.srcIdx {
		return
	}
	rec := mirrorRec{del: del, table: table, key: append([]byte(nil), key...), version: version}
	if !del {
		rec.value = append([]byte(nil), value...)
	}
	m.observeMoved(version)
	m.pending.Add(1)
	m.pendingN.Add(1)
	m.dualWrites.Add(1)
	migCatchupDepth.Add(1)
	migDualWrites.Inc()
	select {
	case m.queue <- rec:
	case <-m.stopCh:
		m.recDone()
	}
}

func (m *Mover) recDone() {
	m.pending.Done()
	m.pendingN.Add(-1)
	migCatchupDepth.Add(-1)
}

func (m *Mover) catchupLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stopCh:
			// Fail out the remainder so DrainQueue cannot hang on Stop.
			for {
				select {
				case <-m.queue:
					m.recDone()
				default:
					return
				}
			}
		case rec := <-m.queue:
			m.deliver(rec)
			m.recDone()
		}
	}
}

// deliver pushes one record to every replica datalet of its new owner,
// retrying with backoff until it lands or the mover stops. Unlike the EC
// propagator there is no give-up path: a dropped record here would be a
// lost acknowledged write after cutover. If a destination stays down, the
// coordinator's orchestration RPC times out and aborts the migration
// instead.
func (m *Mover) deliver(rec mirrorRec) {
	op := wire.OpPut
	if rec.del {
		op = wire.OpDel
	}
	for attempt := 0; ; attempt++ {
		err := m.applyAt(m.ownerIdx(rec.key), op, rec.table, rec.key, rec.value, rec.version)
		if err == nil {
			return
		}
		backoff := time.Duration(attempt+1) * 5 * time.Millisecond
		if backoff > 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		}
		m.cfg.Logf("migrate %s: catch-up delivery of %q: %v (retrying)", m.cfg.Spec.ID, rec.key, err)
		select {
		case <-m.stopCh:
			return
		case <-time.After(backoff):
		}
	}
}

// backendsFor resolves (dialing lazily) the destination shard's replica
// datalets and makes sure table exists there.
func (m *Mover) backendsFor(shardIdx int, table string) ([]Backend, error) {
	shard := m.target.Shards[shardIdx]
	m.destsMu.Lock()
	defer m.destsMu.Unlock()
	bs, ok := m.dests[shard.ID]
	if !ok {
		bs = make([]Backend, 0, len(shard.Replicas))
		for _, n := range shard.Replicas {
			b, err := m.cfg.Dest(n)
			if err != nil {
				return nil, fmt.Errorf("dial dest %s: %w", n.ID, err)
			}
			bs = append(bs, b)
		}
		m.dests[shard.ID] = bs
	}
	if table != "" && !m.tables[shard.ID+"\x00"+table] {
		// Idempotent DDL; the default table always exists.
		req := wire.GetRequest()
		req.Op = wire.OpCreateTable
		req.Table = table
		resp := wire.GetResponse()
		for _, b := range bs {
			if err := b.Do(req, resp); err != nil {
				wire.PutRequest(req)
				wire.PutResponse(resp)
				return nil, fmt.Errorf("create table %q at dest: %w", table, err)
			}
			resp.Reset()
		}
		wire.PutRequest(req)
		wire.PutResponse(resp)
		m.tables[shard.ID+"\x00"+table] = true
	}
	return bs, nil
}

// applyAt writes one versioned record to every replica datalet of the
// destination shard, pipelined; the first error wins.
func (m *Mover) applyAt(shardIdx int, op wire.Op, table string, key, value []byte, version uint64) error {
	bs, err := m.backendsFor(shardIdx, table)
	if err != nil {
		return err
	}
	type flight struct {
		req  *wire.Request
		resp *wire.Response
		errc <-chan error
	}
	flights := make([]flight, 0, len(bs))
	for _, b := range bs {
		req := wire.GetRequest()
		req.Op = op
		req.Table = table
		req.Key = key
		req.Value = value
		req.Version = version
		resp := wire.GetResponse()
		flights = append(flights, flight{req, resp, b.DoAsync(req, resp)})
	}
	var firstErr error
	for _, f := range flights {
		err := <-f.errc
		if err == nil {
			err = destErr(op, f.resp)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		wire.PutRequest(f.req)
		wire.PutResponse(f.resp)
	}
	return firstErr
}

// destErr maps a destination response to an error. NotFound needs care: on
// a Del it means "already gone" (fine), but on a Put it means the table is
// missing at the destination — swallowing that would silently lose the
// record, so it is surfaced for retry after table creation.
func destErr(op wire.Op, resp *wire.Response) error {
	if op == wire.OpPut && resp.Status == wire.StatusNotFound {
		return fmt.Errorf("dest rejected put: %s", resp.Err)
	}
	return resp.ErrValue()
}

// Stream copies every key that moves to its new owner, table by table, in
// scanBatch chunks over the ordinary OpScan path. The coordinator runs it
// on ONE elected source replica while every replica's dual-write hook is
// already armed: anything written after a chunk passes its position is
// re-delivered through catch-up, and LWW versions make the overlap
// converge regardless of arrival order.
func (m *Mover) Stream() (keys, bytes uint64, err error) {
	m.setPhase(PhaseSnapshot)
	tables, err := m.listTables()
	if err == nil {
		for _, table := range tables {
			if err = m.streamTable(table); err != nil {
				break
			}
		}
	}
	if err != nil {
		m.fail(err)
		return m.keysMoved.Load(), m.bytesMoved.Load(), err
	}
	m.setPhase(PhaseCatchUp)
	return m.keysMoved.Load(), m.bytesMoved.Load(), nil
}

// listTables asks the local datalet which tables exist (OpStats pairs).
func (m *Mover) listTables() ([]string, error) {
	req := wire.GetRequest()
	req.Op = wire.OpStats
	resp := wire.GetResponse()
	defer wire.PutRequest(req)
	defer wire.PutResponse(resp)
	if err := m.cfg.Local.Do(req, resp); err != nil {
		return nil, err
	}
	if err := resp.ErrValue(); err != nil {
		return nil, err
	}
	tables := make([]string, 0, len(resp.Pairs))
	for _, kv := range resp.Pairs {
		tables = append(tables, string(kv.Key))
	}
	return tables, nil
}

func (m *Mover) streamTable(table string) error {
	var cursor []byte
	for {
		req := wire.GetRequest()
		req.Op = wire.OpScan
		req.Table = table
		req.Key = cursor
		req.Limit = scanBatch
		resp := wire.GetResponse()
		err := m.cfg.Local.Do(req, resp)
		wire.PutRequest(req)
		if err == nil {
			err = resp.ErrValue()
		}
		if err == nil {
			err = m.pushChunk(table, resp.Pairs)
		}
		n := len(resp.Pairs)
		if n > 0 {
			cursor = append(cursor[:0], resp.Pairs[n-1].Key...)
			cursor = append(cursor, 0)
		}
		wire.PutResponse(resp)
		if err != nil {
			return err
		}
		if n < scanBatch {
			return nil
		}
		select {
		case <-m.stopCh:
			return errMoverStopped
		default:
		}
	}
}

// pushChunk fans one scan chunk's moving pairs out to their owners, all in
// flight at once on the pipelined connections, and waits for every ack
// before returning (the chunk's buffers alias the scan response).
func (m *Mover) pushChunk(table string, pairs []wire.KV) error {
	type flight struct {
		req  *wire.Request
		resp *wire.Response
		errc <-chan error
	}
	var flights []flight
	var firstErr error
	for i := range pairs {
		kv := &pairs[i]
		owner := m.ownerIdx(kv.Key)
		if owner == m.srcIdx {
			continue
		}
		bs, err := m.backendsFor(owner, table)
		if err != nil {
			firstErr = err
			break
		}
		for _, b := range bs {
			req := wire.GetRequest()
			req.Op = wire.OpPut
			req.Table = table
			req.Key = kv.Key
			req.Value = kv.Value
			req.Version = kv.Version
			resp := wire.GetResponse()
			flights = append(flights, flight{req, resp, b.DoAsync(req, resp)})
		}
		m.keysMoved.Add(1)
		m.bytesMoved.Add(uint64(len(kv.Key) + len(kv.Value)))
		m.observeMoved(kv.Version)
		migKeysMoved.Inc()
		migBytesMoved.Add(int64(len(kv.Key) + len(kv.Value)))
	}
	for _, f := range flights {
		err := <-f.errc
		if err == nil {
			err = destErr(wire.OpPut, f.resp)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		wire.PutRequest(f.req)
		wire.PutResponse(f.resp)
	}
	return firstErr
}

// observeMoved tracks the highest version shipped to a destination, the
// input to the destination's version floor (AA+EC) / clock observation.
func (m *Mover) observeMoved(v uint64) {
	for {
		cur := m.maxVersion.Load()
		if v <= cur || m.maxVersion.CompareAndSwap(cur, v) {
			return
		}
	}
}

// MaxVersion returns the highest version this mover has shipped. The
// coordinator takes the max across all movers and floors the destination
// shards' version domains with it before bumping the epoch, so
// post-cutover writes always outrank migrated history.
func (m *Mover) MaxVersion() uint64 { return m.maxVersion.Load() }

// BeginCutover raises the write barrier: the controlet starts refusing
// writes to moving keys (clients see Unavailable, back off and refresh).
// The caller must then quiesce its in-flight writes and call DrainQueue.
func (m *Mover) BeginCutover() {
	m.barrier.Store(true)
	m.setPhase(PhaseCutover)
}

// DrainQueue blocks until every enqueued dual-write has been delivered to
// its destination — the cutover invariant: the coordinator must not bump
// the epoch while any source replica's delta queue is non-empty.
func (m *Mover) DrainQueue() { m.pending.Wait() }

// QueueDepth reports how many dual-writes are still queued or in flight.
func (m *Mover) QueueDepth() int64 { return m.pendingN.Load() }

// GC deletes moved keys from the source datalet, chunked like the
// snapshot. Each tombstone carries the record's stored version, so a write
// that raced in with a higher version survives. When the source shard left
// the map entirely (drain), the whole keyspace moved and one ranged delete
// per table does the sweep.
func (m *Mover) GC() (uint64, error) {
	m.setPhase(PhaseGC)
	tables, err := m.listTables()
	if err != nil {
		m.fail(err)
		return 0, err
	}
	var total uint64
	for _, table := range tables {
		var n uint64
		var err error
		if m.srcIdx < 0 {
			n, err = m.delRangeLocal(table)
		} else {
			n, err = m.gcTable(table)
		}
		total += n
		if err != nil {
			m.keysGCed.Add(total)
			m.fail(err)
			return total, err
		}
	}
	m.keysGCed.Add(total)
	migKeysGCed.Add(int64(total))
	m.setPhase(PhaseDone)
	return total, nil
}

// delRangeLocal clears one whole table via the datalet's ranged delete.
func (m *Mover) delRangeLocal(table string) (uint64, error) {
	req := wire.GetRequest()
	req.Op = wire.OpDelRange
	req.Table = table
	resp := wire.GetResponse()
	defer wire.PutRequest(req)
	defer wire.PutResponse(resp)
	if err := m.cfg.Local.Do(req, resp); err != nil {
		return 0, err
	}
	if err := resp.ErrValue(); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// gcTable walks one table and deletes the keys that moved away, pipelining
// deletes within each chunk. The cursor is monotonic, so deleting behind
// it never disturbs the walk.
func (m *Mover) gcTable(table string) (uint64, error) {
	type flight struct {
		req  *wire.Request
		resp *wire.Response
		errc <-chan error
	}
	var cursor []byte
	var deleted uint64
	for {
		req := wire.GetRequest()
		req.Op = wire.OpScan
		req.Table = table
		req.Key = cursor
		req.Limit = scanBatch
		resp := wire.GetResponse()
		err := m.cfg.Local.Do(req, resp)
		wire.PutRequest(req)
		if err == nil {
			err = resp.ErrValue()
		}
		if err != nil {
			wire.PutResponse(resp)
			return deleted, err
		}
		var flights []flight
		for i := range resp.Pairs {
			kv := &resp.Pairs[i]
			if m.ownerIdx(kv.Key) == m.srcIdx {
				continue
			}
			dreq := wire.GetRequest()
			dreq.Op = wire.OpDel
			dreq.Key = kv.Key
			dreq.Table = table
			dreq.Version = kv.Version
			dresp := wire.GetResponse()
			flights = append(flights, flight{dreq, dresp, m.cfg.Local.DoAsync(dreq, dresp)})
			deleted++
		}
		var firstErr error
		for _, f := range flights {
			err := <-f.errc
			if err == nil {
				err = f.resp.ErrValue()
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
			wire.PutRequest(f.req)
			wire.PutResponse(f.resp)
		}
		n := len(resp.Pairs)
		if n > 0 {
			cursor = append(cursor[:0], resp.Pairs[n-1].Key...)
			cursor = append(cursor, 0)
		}
		wire.PutResponse(resp)
		if firstErr != nil {
			return deleted, firstErr
		}
		if n < scanBatch {
			return deleted, nil
		}
	}
}

func (m *Mover) fail(err error) {
	msg := err.Error()
	m.failErr.Store(&msg)
	m.setPhase(PhaseFailed)
}

// Stop tears the mover down. On the abort path the barrier lifts so the
// source serves writes again and queued dual-writes are discarded —
// harmless, since the destinations only keep LWW-versioned copies of keys
// they do not own until an epoch bump that now never comes. On the success
// path the queue is already empty.
func (m *Mover) Stop() {
	if m.stopped.Swap(true) {
		return
	}
	m.barrier.Store(false)
	close(m.stopCh)
	m.wg.Wait()
	if Phase(m.phase.Load()) != PhaseDone {
		m.setPhase(PhaseFailed)
	}
	m.phaseGauge.set(PhaseIdle)
}

// Status snapshots the mover's progress.
func (m *Mover) Status() Status {
	st := Status{
		ID:         m.cfg.Spec.ID,
		Phase:      Phase(m.phase.Load()).String(),
		KeysMoved:  m.keysMoved.Load(),
		BytesMoved: m.bytesMoved.Load(),
		DualWrites: m.dualWrites.Load(),
		QueueDepth: m.pendingN.Load(),
		KeysGCed:   m.keysGCed.Load(),
	}
	if p := m.failErr.Load(); p != nil {
		st.Err = *p
	}
	return st
}
