package migrate

import (
	"sync"

	"bespokv/internal/metrics"
)

// Migration counters follow the internal/metrics hot-path contract: every
// series is resolved once here (or once per shard in phaseGaugeFor) and
// the write path only touches lock-free atomics — no map lookups or
// allocations per mirrored key.
var (
	migKeysMoved    = metrics.Default.Counter("bespokv_migrate_keys_moved_total")
	migBytesMoved   = metrics.Default.Counter("bespokv_migrate_bytes_moved_total")
	migDualWrites   = metrics.Default.Counter("bespokv_migrate_dual_writes_total")
	migKeysGCed     = metrics.Default.Counter("bespokv_migrate_keys_gced_total")
	migCatchupDepth = metrics.Default.Gauge("bespokv_migrate_catchup_queue_depth")
)

// phaseGauge exposes one source shard's migration phase as a numeric gauge
// (the Phase enum's ordinal; 0 = idle).
type phaseGauge struct{ g *metrics.Gauge }

func (p *phaseGauge) set(ph Phase) { p.g.Set(int64(ph)) }

var (
	phaseGaugesMu sync.Mutex
	phaseGauges   = map[string]*phaseGauge{}
)

// phaseGaugeFor resolves (once per shard) the phase gauge for shardID.
// Called only from New — off the hot path.
func phaseGaugeFor(shardID string) *phaseGauge {
	phaseGaugesMu.Lock()
	defer phaseGaugesMu.Unlock()
	if p, ok := phaseGauges[shardID]; ok {
		return p
	}
	p := &phaseGauge{g: metrics.Default.Gauge("bespokv_migrate_phase", "shard", shardID)}
	phaseGauges[shardID] = p
	return p
}
