package migrate

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// rec is one stored value in the fake datalet.
type rec struct {
	value   []byte
	version uint64
}

// fakeDatalet is an in-memory LWW store speaking the subset of the wire
// protocol the mover drives: Put/Del with explicit versions, sorted Scan,
// Stats (table listing), CreateTable and DelRange.
type fakeDatalet struct {
	mu       sync.Mutex
	tables   map[string]map[string]rec
	failPuts atomic.Int32 // fail this many Puts with StatusErr first
	puts     atomic.Int64
}

func newFakeDatalet(tables ...string) *fakeDatalet {
	f := &fakeDatalet{tables: map[string]map[string]rec{"": {}}}
	for _, t := range tables {
		f.tables[t] = map[string]rec{}
	}
	return f
}

func (f *fakeDatalet) put(table, key, value string, version uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tables[table][key] = rec{value: []byte(value), version: version}
}

func (f *fakeDatalet) get(table, key string) (rec, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.tables[table][key]
	return r, ok
}

func (f *fakeDatalet) count(table string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.tables[table])
}

func (f *fakeDatalet) Do(req *wire.Request, resp *wire.Response) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	resp.Status = wire.StatusOK
	switch req.Op {
	case wire.OpStats:
		names := make([]string, 0, len(f.tables))
		for name := range f.tables {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			resp.Pairs = append(resp.Pairs, wire.KV{Key: []byte(name)})
		}
	case wire.OpCreateTable:
		if _, ok := f.tables[req.Table]; !ok {
			f.tables[req.Table] = map[string]rec{}
		}
	case wire.OpPut:
		f.puts.Add(1)
		if f.failPuts.Load() > 0 {
			f.failPuts.Add(-1)
			resp.Status = wire.StatusErr
			resp.Err = "injected put failure"
			return nil
		}
		t, ok := f.tables[req.Table]
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Err = "no such table"
			return nil
		}
		v := req.Version
		if v == 0 {
			v = 1
		}
		if cur, ok := t[string(req.Key)]; !ok || v >= cur.version {
			t[string(req.Key)] = rec{value: append([]byte(nil), req.Value...), version: v}
		}
		resp.Version = v
	case wire.OpDel:
		t, ok := f.tables[req.Table]
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Err = "no such table"
			return nil
		}
		if cur, ok := t[string(req.Key)]; ok && (req.Version == 0 || req.Version >= cur.version) {
			delete(t, string(req.Key))
		}
	case wire.OpScan:
		t, ok := f.tables[req.Table]
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Err = "no such table"
			return nil
		}
		keys := make([]string, 0, len(t))
		for k := range t {
			if len(req.Key) > 0 && k < string(req.Key) {
				continue
			}
			if len(req.EndKey) > 0 && k >= string(req.EndKey) {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if req.Limit > 0 && len(keys) > int(req.Limit) {
			keys = keys[:req.Limit]
		}
		for _, k := range keys {
			r := t[k]
			resp.Pairs = append(resp.Pairs, wire.KV{Key: []byte(k), Value: r.value, Version: r.version})
		}
	case wire.OpDelRange:
		t, ok := f.tables[req.Table]
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Err = "no such table"
			return nil
		}
		var n uint64
		for k := range t {
			if len(req.Key) > 0 && k < string(req.Key) {
				continue
			}
			if len(req.EndKey) > 0 && k >= string(req.EndKey) {
				continue
			}
			delete(t, k)
			n++
		}
		resp.Version = n
	default:
		resp.Status = wire.StatusErr
		resp.Err = fmt.Sprintf("fake: unsupported op %s", req.Op)
	}
	return nil
}

func (f *fakeDatalet) DoAsync(req *wire.Request, resp *wire.Response) <-chan error {
	ch := make(chan error, 1)
	ch <- f.Do(req, resp)
	return ch
}

// testTopo builds an n-shard hash map s0..s{n-1}, one replica each.
func testTopo(n int) *topology.Map {
	m := &topology.Map{
		Epoch:       3,
		Mode:        topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Partitioner: topology.HashPartitioner,
	}
	for i := 0; i < n; i++ {
		m.Shards = append(m.Shards, topology.Shard{
			ID:       fmt.Sprintf("s%d", i),
			Replicas: []topology.Node{{ID: fmt.Sprintf("n%d", i), DataletAddr: fmt.Sprintf("d%d", i)}},
		})
	}
	return m
}

// testMover wires a mover whose source is shard "s0" of target, with one
// fake datalet per destination shard (keyed by node ID).
func testMover(t *testing.T, target *topology.Map, src *fakeDatalet) (*Mover, map[string]*fakeDatalet) {
	t.Helper()
	dests := map[string]*fakeDatalet{}
	for _, s := range target.Shards {
		for _, n := range s.Replicas {
			if _, ok := dests[n.ID]; !ok {
				dests[n.ID] = newFakeDatalet()
			}
		}
	}
	m, err := New(Config{
		Spec:  Spec{ID: "mig-1", SourceShard: "s0", Target: target},
		Local: src,
		Dest: func(n topology.Node) (Backend, error) {
			d, ok := dests[n.ID]
			if !ok {
				return nil, fmt.Errorf("no fake for node %s", n.ID)
			}
			return d, nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m, dests
}

func TestMoverJoinFlow(t *testing.T) {
	// Old map: s0 alone owns everything. Target adds s1: the keys whose
	// ring owner becomes s1 must move, the rest must stay untouched.
	target := testTopo(2)
	src := newFakeDatalet("aux")
	const n = 800
	for i := 0; i < n; i++ {
		src.put("", fmt.Sprintf("key-%04d", i), fmt.Sprintf("val-%d", i), uint64(i+1))
	}
	src.put("aux", "a1", "x", 7)
	src.put("aux", "a2", "y", 9)

	m, dests := testMover(t, target, src)
	ring := topology.BuildRing(target)
	moving := map[string]bool{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		moving[k] = target.ShardFor([]byte(k), ring) != 0
	}

	if got := Phase(m.phase.Load()); got != PhaseDualWrite {
		t.Fatalf("phase after New = %v", got)
	}

	// A dual-write to a moving key lands at the destination; a staying key
	// is filtered out before the queue.
	var movingKey, stayingKey string
	for k, mv := range moving {
		if mv && movingKey == "" {
			movingKey = k
		}
		if !mv && stayingKey == "" {
			stayingKey = k
		}
	}
	if movingKey == "" || stayingKey == "" {
		t.Fatal("ring diff degenerate: need both moving and staying keys")
	}
	m.Mirror(false, "", []byte(movingKey), []byte("mirrored"), 1<<40)
	m.Mirror(false, "", []byte(stayingKey), []byte("should-not-move"), 1<<40)
	m.DrainQueue()
	if r, ok := dests["n1"].get("", movingKey); !ok || string(r.value) != "mirrored" {
		t.Fatalf("dual-write missing at dest: %+v ok=%v", r, ok)
	}
	if _, ok := dests["n1"].get("", stayingKey); ok {
		t.Fatal("staying key leaked to destination")
	}

	keys, bytesMoved, err := m.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if keys == 0 || bytesMoved == 0 {
		t.Fatalf("stream moved keys=%d bytes=%d", keys, bytesMoved)
	}
	// Every moving key must be at the destination with its source version
	// (except the one the dual-write already bumped past).
	for k, mv := range moving {
		r, ok := dests["n1"].get("", k)
		if mv && !ok {
			t.Fatalf("moving key %q missing at destination", k)
		}
		if !mv && ok {
			t.Fatalf("staying key %q copied to destination", k)
		}
		if mv && k != movingKey {
			want, _ := src.get("", k)
			if r.version != want.version || !bytes.Equal(r.value, want.value) {
				t.Fatalf("key %q at dest = (%q,%d), want (%q,%d)", k, r.value, r.version, want.value, want.version)
			}
		}
	}
	// The dual-written value (higher version) must have survived the
	// snapshot's older copy arriving afterwards.
	if r, _ := dests["n1"].get("", movingKey); string(r.value) != "mirrored" {
		t.Fatalf("snapshot clobbered newer dual-write: %q", r.value)
	}
	// Secondary table contents moved too (table auto-created at dest).
	for _, k := range []string{"a1", "a2"} {
		if mv := target.ShardFor([]byte(k), ring) != 0; mv {
			if _, ok := dests["n1"].get("aux", k); !ok {
				t.Fatalf("aux key %q missing at destination", k)
			}
		}
	}

	m.BeginCutover()
	if !m.Blocks([]byte(movingKey)) {
		t.Fatal("cutover barrier must block writes to moving keys")
	}
	if m.Blocks([]byte(stayingKey)) {
		t.Fatal("cutover barrier must not block staying keys")
	}
	m.DrainQueue()

	gced, err := m.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gced == 0 {
		t.Fatal("GC deleted nothing")
	}
	for k, mv := range moving {
		_, ok := src.get("", k)
		if mv && ok {
			t.Fatalf("moved key %q survived GC at source", k)
		}
		if !mv && !ok {
			t.Fatalf("staying key %q deleted by GC", k)
		}
	}

	st := m.Status()
	if st.Phase != "done" || st.KeysMoved != keys || st.KeysGCed != gced || st.DualWrites != 1 || st.QueueDepth != 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestMoverDrainFlow(t *testing.T) {
	// Target drops s0 entirely: every key moves, and GC is a ranged delete
	// of the whole keyspace.
	full := testTopo(3)
	target := full.Clone()
	target.Shards = target.Shards[1:] // s1, s2 survive
	src := newFakeDatalet()
	const n = 300
	for i := 0; i < n; i++ {
		src.put("", fmt.Sprintf("key-%04d", i), "v", uint64(i+1))
	}
	m, dests := testMover(t, target, src)
	if !m.Moves([]byte("anything")) {
		t.Fatal("drained shard must move every key")
	}
	keys, _, err := m.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if keys != n {
		t.Fatalf("moved %d keys, want all %d", keys, n)
	}
	if got := dests["n1"].count("") + dests["n2"].count(""); got != n {
		t.Fatalf("destinations hold %d keys, want %d", got, n)
	}
	ring := topology.BuildRing(target)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		owner := target.Shards[target.ShardFor([]byte(k), ring)].Replicas[0].ID
		if _, ok := dests[owner].get("", k); !ok {
			t.Fatalf("key %q missing at its owner %s", k, owner)
		}
	}
	m.BeginCutover()
	m.DrainQueue()
	gced, err := m.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gced != n || src.count("") != 0 {
		t.Fatalf("GC removed %d, source still holds %d", gced, src.count(""))
	}
}

func TestMoverCatchupRetriesUntilDelivered(t *testing.T) {
	target := testTopo(2)
	src := newFakeDatalet()
	m, dests := testMover(t, target, src)
	// Find a key owned by s1 and make the destination fail a few times.
	ring := topology.BuildRing(target)
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if target.ShardFor([]byte(k), ring) == 1 {
			key = k
			break
		}
	}
	dests["n1"].failPuts.Store(3)
	m.Mirror(false, "", []byte(key), []byte("persistent"), 42)
	done := make(chan struct{})
	go func() { m.DrainQueue(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("catch-up never delivered past transient failures")
	}
	if r, ok := dests["n1"].get("", key); !ok || string(r.value) != "persistent" {
		t.Fatalf("record lost after retries: %+v ok=%v", r, ok)
	}
	if p := dests["n1"].puts.Load(); p != 4 {
		t.Fatalf("destination saw %d puts, want 3 failures + 1 success", p)
	}
}

func TestMoverStopLiftsBarrierAndDrains(t *testing.T) {
	target := testTopo(2)
	m, _ := testMover(t, target, newFakeDatalet())
	m.BeginCutover()
	m.Stop()
	if m.Blocks([]byte("k")) {
		t.Fatal("Stop must lift the cutover barrier")
	}
	// Mirror after stop must not deadlock or leak pending marks.
	m.Mirror(false, "", []byte("late"), []byte("v"), 1)
	doneCh := make(chan struct{})
	go func() { m.DrainQueue(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("DrainQueue hangs after Stop")
	}
}

func TestNewValidation(t *testing.T) {
	good := Config{
		Spec:  Spec{ID: "m", SourceShard: "s0", Target: testTopo(2)},
		Local: newFakeDatalet(),
		Dest:  func(topology.Node) (Backend, error) { return newFakeDatalet(), nil },
	}
	cases := []func(*Config){
		func(c *Config) { c.Spec.Target = nil },
		func(c *Config) { c.Spec.ID = "" },
		func(c *Config) { c.Spec.SourceShard = "" },
		func(c *Config) { c.Spec.Target = testTopo(2); c.Spec.Target.Partitioner = topology.RangePartitioner },
		func(c *Config) { c.Local = nil },
		func(c *Config) { c.Dest = nil },
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	m, err := New(good)
	if err != nil {
		t.Fatal(err)
	}
	m.Stop()
}
