// Package migrate implements online shard migration — the elastic side of
// the bespoKV control plane. The coordinator plans a rebalance as a
// consistent-hash ownership diff (see internal/topology.OwnershipDiff) and
// orchestrates one Mover per source shard through the Spinnaker-style
// handoff: arm a dual-write window on every source replica, stream a
// snapshot of the moving keys over the ordinary OpScan path, drain the
// delta queue, cut writes over behind a short barrier, bump the epoch, and
// garbage-collect the moved range at the source. Last-writer-wins versions
// ride with every moved pair, so the snapshot, the dual-writes and live
// post-cutover traffic all commute.
package migrate

import "bespokv/internal/topology"

// Phase is a migration's lifecycle stage, in protocol order.
type Phase int32

const (
	// PhaseIdle: no migration active.
	PhaseIdle Phase = iota
	// PhaseDualWrite: acknowledged writes to moving keys are mirrored to
	// their post-cutover owner; the snapshot has not started yet.
	PhaseDualWrite
	// PhaseSnapshot: the elected source replica is streaming moving keys
	// to their new owners in chunks (dual-writes continue underneath).
	PhaseSnapshot
	// PhaseCatchUp: snapshot complete; the mirror queue is draining.
	PhaseCatchUp
	// PhaseCutover: writes to moving keys are refused while the last
	// deltas drain; ends with the coordinator's epoch bump.
	PhaseCutover
	// PhaseGC: the source is deleting keys it no longer owns.
	PhaseGC
	// PhaseDone: migration complete.
	PhaseDone
	// PhaseFailed: migration aborted; the source serves as before.
	PhaseFailed
)

// String returns the phase mnemonic.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseDualWrite:
		return "dual-write"
	case PhaseSnapshot:
		return "snapshot"
	case PhaseCatchUp:
		return "catch-up"
	case PhaseCutover:
		return "cutover"
	case PhaseGC:
		return "gc"
	case PhaseDone:
		return "done"
	case PhaseFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Spec tells one source controlet how to run its side of a migration.
type Spec struct {
	// ID names the migration run (one coordinator-wide ID per rebalance).
	ID string `json:"id"`
	// SourceShard is the shard whose controlets run this mover.
	SourceShard string `json:"source_shard"`
	// Target is the post-cutover map: same Mode and Partitioner, the new
	// shard set. Its Epoch is assigned by the coordinator at install time;
	// movers use it only for ownership lookups.
	Target *topology.Map `json:"target"`
}

// Status is one mover's progress snapshot, surfaced through the controlet
// Stats RPC, /statusz and the coordinator's MigrationStatus.
type Status struct {
	ID         string `json:"id"`
	Phase      string `json:"phase"`
	KeysMoved  uint64 `json:"keys_moved"`
	BytesMoved uint64 `json:"bytes_moved"`
	DualWrites uint64 `json:"dual_writes"`
	QueueDepth int64  `json:"catch_up_depth"`
	KeysGCed   uint64 `json:"keys_gced"`
	Err        string `json:"err,omitempty"`
}
