package migrate

import (
	"testing"

	"bespokv/internal/topology"
)

func TestPlanJoin(t *testing.T) {
	cur := testTopo(3)
	add := topology.Shard{ID: "s3", Replicas: []topology.Node{{ID: "n3"}}}
	p, err := PlanJoin(cur, add)
	if err != nil {
		t.Fatal(err)
	}
	if p.BaseEpoch != cur.Epoch {
		t.Fatalf("base epoch %d, want %d", p.BaseEpoch, cur.Epoch)
	}
	if len(p.Target.Shards) != 4 || p.Target.Shards[3].ID != "s3" {
		t.Fatalf("target shards = %+v", p.Target.Shards)
	}
	if len(p.Sources) == 0 {
		t.Fatal("join plan has no sources")
	}
	for _, src := range p.Sources {
		if src == "s3" {
			t.Fatal("new shard listed as a source")
		}
	}
	for _, tr := range p.Transfers {
		if tr.To != "s3" {
			t.Fatalf("join transfer to %s, want s3", tr.To)
		}
	}
	// A 4-way ring should hand the newcomer very roughly a quarter.
	if p.MovedFraction < 0.05 || p.MovedFraction > 0.6 {
		t.Fatalf("moved fraction %.3f implausible for 3→4 shards", p.MovedFraction)
	}
	// Planning must not mutate the input map.
	if len(cur.Shards) != 3 {
		t.Fatal("PlanJoin mutated the current map")
	}

	if _, err := PlanJoin(cur, topology.Shard{ID: "s0", Replicas: add.Replicas}); err == nil {
		t.Fatal("duplicate shard ID accepted")
	}
	if _, err := PlanJoin(cur, topology.Shard{ID: "sX"}); err == nil {
		t.Fatal("shard without replicas accepted")
	}
}

func TestPlanDrain(t *testing.T) {
	cur := testTopo(3)
	p, err := PlanDrain(cur, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Target.Shards) != 2 {
		t.Fatalf("target shards = %+v", p.Target.Shards)
	}
	if len(p.Sources) != 1 || p.Sources[0] != "s1" {
		t.Fatalf("drain sources = %v, want [s1]", p.Sources)
	}
	for _, tr := range p.Transfers {
		if tr.From != "s1" {
			t.Fatalf("drain transfer from %s, want s1", tr.From)
		}
	}
	if len(cur.Shards) != 3 {
		t.Fatal("PlanDrain mutated the current map")
	}
	if _, err := PlanDrain(cur, "nope"); err == nil {
		t.Fatal("unknown shard accepted")
	}
	one := testTopo(1)
	if _, err := PlanDrain(one, "s0"); err == nil {
		t.Fatal("draining the last shard accepted")
	}
}

func TestPlanRebalance(t *testing.T) {
	cur := testTopo(3)
	// Swap s2 for s9 in one step: s2 drains, s9 joins.
	shards := []topology.Shard{
		cur.Shards[0], cur.Shards[1],
		{ID: "s9", Replicas: []topology.Node{{ID: "n9"}}},
	}
	p, err := PlanRebalance(cur, shards)
	if err != nil {
		t.Fatal(err)
	}
	hasS2 := false
	for _, src := range p.Sources {
		if src == "s2" {
			hasS2 = true
		}
	}
	if !hasS2 {
		t.Fatalf("replaced shard s2 not among sources %v", p.Sources)
	}
	if _, err := PlanRebalance(cur, nil); err == nil {
		t.Fatal("empty target accepted")
	}
	if _, err := PlanRebalance(cur, []topology.Shard{shards[0], shards[0]}); err == nil {
		t.Fatal("duplicate target shard accepted")
	}
}

func TestCheckPlannable(t *testing.T) {
	if _, err := PlanDrain(nil, "s0"); err == nil {
		t.Fatal("nil map accepted")
	}
	cur := testTopo(2)
	cur.Transition = &topology.Transition{}
	if _, err := PlanDrain(cur, "s0"); err == nil {
		t.Fatal("map mid-transition accepted")
	}
}
