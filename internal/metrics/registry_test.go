package metrics

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCounterGaugeIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("ops_total", "op", "PUT")
	c2 := r.Counter("ops_total", "op", "PUT")
	if c1 != c2 {
		t.Fatal("same name+labels must return the same counter")
	}
	c3 := r.Counter("ops_total", "op", "GET")
	if c1 == c3 {
		t.Fatal("different labels must return different counters")
	}
	// Label order must not matter.
	a := r.Counter("multi", "a", "1", "b", "2")
	b := r.Counter("multi", "b", "2", "a", "1")
	if a != b {
		t.Fatal("label order must not change series identity")
	}
	c1.Add(3)
	c1.Inc()
	if c1.Value() != 4 {
		t.Fatalf("counter=%d, want 4", c1.Value())
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge=%d, want 7", g.Value())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x")
}

func TestRegistrySetHistogramReplaces(t *testing.T) {
	r := NewRegistry()
	h1 := &Histogram{}
	h1.Observe(time.Millisecond)
	r.SetHistogram("bench_lat", h1)
	h2 := &Histogram{}
	r.SetHistogram("bench_lat", h2)
	if got := r.Histogram("bench_lat"); got != h2 {
		t.Fatal("SetHistogram must replace the registered histogram")
	}
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [-+]?[0-9].*$`)

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("bespokv_ops_total", "op", "PUT").Add(7)
	r.Counter("bespokv_ops_total", "op", "GET").Add(3)
	r.Gauge("bespokv_inflight").Set(12)
	r.GaugeFunc("bespokv_epoch", func() float64 { return 42 })
	h := r.Histogram("bespokv_op_seconds", "op", "PUT")
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(20 * time.Millisecond)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	var samples, types int
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			types++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line does not parse as prometheus sample: %q", line)
		}
		samples++
	}
	if types != 4 {
		t.Fatalf("TYPE lines=%d, want 4\n%s", types, out)
	}
	if samples == 0 {
		t.Fatal("no samples emitted")
	}
	for _, want := range []string{
		`bespokv_ops_total{op="PUT"} 7`,
		`bespokv_ops_total{op="GET"} 3`,
		`bespokv_inflight 12`,
		`bespokv_epoch 42`,
		`bespokv_op_seconds_bucket{op="PUT",le="+Inf"} 3`,
		`bespokv_op_seconds_count{op="PUT"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `bespokv_op_seconds_bucket`) {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c", "w", string(rune('a'+w%4))).Inc()
				r.Histogram("h").Observe(time.Microsecond)
				if i%50 == 0 {
					var sb strings.Builder
					_ = r.WriteProm(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("c", "w", l).Value()
	}
	if total != 8*500 {
		t.Fatalf("total=%d, want 4000", total)
	}
}

// TestHotPathZeroAlloc is the hard guard behind the Makefile obs target:
// counter increments and histogram observations must not allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bespokv_test_total")
	h := r.Histogram("bespokv_test_seconds")
	g := r.Gauge("bespokv_test_depth")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(137 * time.Microsecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1); g.Add(-1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { SampleLatency() }); n != 0 {
		t.Fatalf("SampleLatency allocates %v/op", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("bespokv_ops_total", "op", "PUT")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("bespokv_ops_total", "op", "PUT")
	}
}

func TestLabelCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetMaxLabelSets(4)

	// Distinct label sets up to the cap get real series.
	for i := 0; i < 4; i++ {
		r.Counter("bespokv_capped_total", "key", fmt.Sprintf("k%d", i)).Inc()
	}
	// Everything past the cap collapses into one overflow series.
	for i := 4; i < 10; i++ {
		r.Counter("bespokv_capped_total", "key", fmt.Sprintf("k%d", i)).Inc()
	}
	over := r.Counter("bespokv_capped_total", "overflow", "true")
	if got := over.Value(); got != 6 {
		t.Fatalf("overflow series absorbed %d increments, want 6", got)
	}
	// Re-looking-up a pre-cap series still returns the real one.
	r.Counter("bespokv_capped_total", "key", "k2").Inc()
	var buf strings.Builder
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `bespokv_capped_total{key="k2"} 2`) {
		t.Fatalf("pre-cap series lost:\n%s", out)
	}
	if strings.Contains(out, `key="k7"`) {
		t.Fatalf("post-cap label set leaked into the registry:\n%s", out)
	}
	if !strings.Contains(out, `bespokv_capped_total{overflow="true"} 6`) {
		t.Fatalf("overflow bucket missing:\n%s", out)
	}
	// The guard counts what it collapsed: six fresh post-cap label sets so
	// far; another new one below routes to overflow and counts too.
	oc := r.Counter("bespokv_metrics_label_overflow_total", "metric", "bespokv_capped_total")
	if got := oc.Value(); got != 6 {
		t.Fatalf("overflow counter = %d, want 6", got)
	}
	r.Counter("bespokv_capped_total", "key", "k99").Inc()
	if got := oc.Value(); got != 7 {
		t.Fatalf("overflow counter after repeat = %d, want 7", got)
	}
	// Series count per name stays bounded: 4 real + overflow.
	series := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "bespokv_capped_total{") {
			series++
		}
	}
	if series != 5 {
		t.Fatalf("rendered %d capped series, want 4 real + 1 overflow", series)
	}
	// Unlabeled series are never capped.
	r.Counter("bespokv_plain_total").Inc()

	// Unregister returns the slot: a new label set becomes a real series
	// again.
	r.Unregister("bespokv_capped_total", "key", "k0")
	fresh := r.Counter("bespokv_capped_total", "key", "fresh")
	fresh.Inc()
	if fresh == over {
		t.Fatal("freed slot still routed to overflow")
	}
}

func TestLabelCardinalityCapGaugeFunc(t *testing.T) {
	// GaugeFunc registrations hold label-set slots too (they re-register
	// in place without double counting), so lookup-created series of the
	// same name see an honest budget.
	r := NewRegistry()
	r.SetMaxLabelSets(2)
	r.GaugeFunc("bespokv_gf", func() float64 { return 1 }, "n", "a")
	r.GaugeFunc("bespokv_gf", func() float64 { return 2 }, "n", "a") // replace, same slot
	r.GaugeFunc("bespokv_gf", func() float64 { return 3 }, "n", "b")
	if got := r.labelSets["bespokv_gf"]; got != 2 {
		t.Fatalf("labelSets = %d, want 2", got)
	}
}
