// Package metrics provides the measurement plumbing the benchmark harness
// uses to regenerate the paper's tables and figures: throughput counters,
// log-bucketed latency histograms (average / p50 / p95 / p99), and
// wall-clock timelines for the failover and transition figures.
package metrics

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a concurrent latency histogram with logarithmic buckets
// from 1µs to ~17s (sub-bucket resolution 1/8 of a power of two).
type Histogram struct {
	buckets [bucketCount]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64
}

const (
	subBuckets  = 8
	bucketCount = 25 * subBuckets // 2^0µs .. 2^24µs
)

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	// Integer log2: bits.Len64 is exact where math.Log2's float round-trip
	// is fragile at exact powers of two (e.g. Log2(1<<29 - 1) rounding up).
	exp := bits.Len64(uint64(us)) - 1
	if exp > 24 {
		exp = 24
	}
	base := int64(1) << exp
	sub := int((us - base) * subBuckets / base)
	if sub >= subBuckets {
		sub = subBuckets - 1
	}
	return exp*subBuckets + sub
}

func bucketMid(b int) time.Duration {
	exp := b / subBuckets
	sub := b % subBuckets
	base := int64(1) << exp
	us := base + base*int64(sub)/subBuckets + base/(2*subBuckets)
	return time.Duration(us) * time.Microsecond
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// expCounts collapses the sub-bucketed histogram to one count per power of
// two (25 entries, 2^0µs .. 2^24µs), the granularity used by the
// Prometheus exposition in registry.go.
func (h *Histogram) expCounts() [25]int64 {
	var out [25]int64
	for b := 0; b < bucketCount; b++ {
		out[b/subBuckets] += h.buckets[b].Load()
	}
	return out
}

// Quantile returns an approximate quantile. q is clamped to (0, 1]: q <= 0
// behaves like the smallest positive quantile (the first nonempty bucket)
// and q >= 1 returns Max() exactly, without scanning the buckets.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < bucketCount; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			return bucketMid(b)
		}
	}
	return h.Max()
}

// Summary renders "mean / p50 / p95 / p99".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%v p50=%v p95=%v p99=%v",
		h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond))
}

// Throughput measures completed operations over a wall-clock window.
type Throughput struct {
	ops   atomic.Int64
	start time.Time
}

// NewThroughput starts the clock.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add records n completed operations.
func (t *Throughput) Add(n int) { t.ops.Add(int64(n)) }

// Ops returns the total recorded.
func (t *Throughput) Ops() int64 { return t.ops.Load() }

// PerSecond returns ops/s since construction. A zero-value Throughput has
// no start instant, so it reports 0 rather than dividing by the decades
// elapsed since the zero time.
func (t *Throughput) PerSecond() float64 {
	if t.start.IsZero() {
		return 0
	}
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.ops.Load()) / el
}

// KQPS returns thousands of queries per second, the paper's unit.
func (t *Throughput) KQPS() float64 { return t.PerSecond() / 1000 }

// Timeline bins completions into fixed wall-clock intervals, producing the
// throughput-vs-time series of Figs. 10 and 16.
type Timeline struct {
	mu       sync.Mutex
	start    time.Time
	interval time.Duration
	bins     []int64
	marks    map[string]time.Duration
}

// NewTimeline starts a timeline with the given bin width.
func NewTimeline(interval time.Duration) *Timeline {
	return &Timeline{
		start:    time.Now(),
		interval: interval,
		marks:    map[string]time.Duration{},
	}
}

// Record counts one completed operation at the current instant.
func (tl *Timeline) Record() {
	idx := int(time.Since(tl.start) / tl.interval)
	tl.mu.Lock()
	for len(tl.bins) <= idx {
		tl.bins = append(tl.bins, 0)
	}
	tl.bins[idx]++
	tl.mu.Unlock()
}

// Mark labels the current instant (e.g. "kill", "transition-start").
func (tl *Timeline) Mark(label string) {
	tl.mu.Lock()
	tl.marks[label] = time.Since(tl.start)
	tl.mu.Unlock()
}

// Point is one timeline bin as ops/s.
type Point struct {
	At  time.Duration
	QPS float64
}

// Series returns the timeline as ops/s per bin.
func (tl *Timeline) Series() []Point {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]Point, len(tl.bins))
	for i, n := range tl.bins {
		out[i] = Point{
			At:  time.Duration(i) * tl.interval,
			QPS: float64(n) / tl.interval.Seconds(),
		}
	}
	return out
}

// Marks returns the labeled instants.
func (tl *Timeline) Marks() map[string]time.Duration {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make(map[string]time.Duration, len(tl.marks))
	for k, v := range tl.marks {
		out[k] = v
	}
	return out
}
