package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrent, process-wide collection of named metrics.
// Lookups (Counter, Gauge, Histogram, ...) are get-or-create and intended
// for initialization or control-path code: they build a label-qualified key
// string and take a lock. Hot paths should resolve their metric pointers
// once up front — Counter.Add, Gauge.Set and Histogram.Observe are all
// lock-free atomics with zero allocations.
//
// Labels are passed as alternating key/value pairs and become part of the
// metric identity, Prometheus-style: Counter("ops_total", "op", "PUT") is a
// different series from Counter("ops_total", "op", "GET").
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry // key = name + rendered label set
	// Label-cardinality guard: at most maxLabelSets distinct labeled
	// series per metric name. Once a name hits the cap, further new label
	// sets collapse into a single overflow series (label overflow="true")
	// and bespokv_metrics_label_overflow_total{metric=name} counts the
	// collapsed lookups — so an unbounded label (a key, a peer address)
	// degrades metric fidelity instead of growing the registry without
	// bound. Unlabeled series are never capped.
	maxLabelSets int
	labelSets    map[string]int // metric name -> distinct labeled series
}

// DefaultMaxLabelSets is the per-metric cap on distinct label sets. Legit
// label spaces here (ops, shards, RPC methods, objectives) are dozens; the
// cap only exists to stop accidents.
const DefaultMaxLabelSets = 256

// overflowLabels marks the collapsed series a capped metric routes to.
var overflowLabels = []string{"overflow", "true"}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type entry struct {
	name   string // bare metric name, for # TYPE grouping
	series string // name{k="v",...} or bare name
	kind   metricKind
	// counted marks labeled series that hold a slot in the name's
	// label-set budget (overflow series don't), so Unregister can return
	// the slot.
	counted bool
	c       *Counter
	g       *Gauge
	fn      func() float64
	h       *Histogram
}

// Default is the process-wide registry that instrumentation across the
// code base records into and /metrics serves from.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries:      map[string]*entry{},
		labelSets:    map[string]int{},
		maxLabelSets: DefaultMaxLabelSets,
	}
}

// SetMaxLabelSets adjusts the per-metric label-set cap (tests; 0 or
// negative restores the default). Already-registered series stay.
func (r *Registry) SetMaxLabelSets(n int) {
	if n <= 0 {
		n = DefaultMaxLabelSets
	}
	r.mu.Lock()
	r.maxLabelSets = n
	r.mu.Unlock()
}

// Counter is a monotonically increasing count. The zero value is ready to
// use; Add and Inc are single atomic adds.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// seriesKey renders name{k1="v1",k2="v2"} with labels sorted by key, so the
// same label set always maps to the same series regardless of call order.
func seriesKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("metrics: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) lookup(name string, kind metricKind, labels []string) *entry {
	key := seriesKey(name, labels)
	r.mu.RLock()
	e := r.entries[key]
	r.mu.RUnlock()
	if e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s already registered with a different type", key))
		}
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e = r.entries[key]; e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s already registered with a different type", key))
		}
		return e
	}
	// Cardinality guard: a new labeled series past the cap collapses into
	// the metric's overflow series (which itself never counts toward the
	// cap, and the overflow counter below is unlabeled-safe by recursion:
	// it has exactly one label value per capped metric name).
	if len(labels) > 0 && r.labelSets[name] >= r.maxLabelSets && name != "bespokv_metrics_label_overflow_total" {
		r.createLocked("bespokv_metrics_label_overflow_total", kindCounter, []string{"metric", name}).c.Inc()
		return r.createLocked(name, kind, overflowLabels)
	}
	e = r.createLocked(name, kind, labels)
	if len(labels) > 0 && !e.counted {
		e.counted = true
		r.labelSets[name]++
	}
	return e
}

// createLocked is get-or-create without the cardinality guard; callers hold
// r.mu and account labelSets themselves (overflow series are unaccounted on
// purpose).
func (r *Registry) createLocked(name string, kind metricKind, labels []string) *entry {
	key := seriesKey(name, labels)
	if e := r.entries[key]; e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s already registered with a different type", key))
		}
		return e
	}
	e := &entry{name: name, series: key, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = &Histogram{}
	}
	r.entries[key] = e
	return e
}

// Counter returns the counter registered under name and labels, creating
// it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, kindCounter, labels).c
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, kindGauge, labels).g
}

// Histogram returns the latency histogram registered under name and
// labels, creating it on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.lookup(name, kindHistogram, labels).h
}

// GaugeFunc registers fn to be evaluated at scrape time under name and
// labels. Re-registering the same series replaces the function, so
// restartable components (tests, the in-process cluster harness) always
// expose their latest instance.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.entries[key]
	if prev != nil && prev.kind != kindGaugeFunc {
		panic(fmt.Sprintf("metrics: %s already registered with a different type", key))
	}
	e := &entry{name: name, series: key, kind: kindGaugeFunc, fn: fn}
	if len(labels) > 0 && (prev == nil || !prev.counted) {
		e.counted = true
		r.labelSets[name]++
	} else if prev != nil {
		e.counted = prev.counted
	}
	r.entries[key] = e
}

// SetHistogram installs (or replaces) an externally constructed histogram
// under name and labels. The bench harness uses this to export the very
// histogram it prints figures from, so live metrics and bench output can
// never disagree.
func (r *Registry) SetHistogram(name string, h *Histogram, labels ...string) {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.entries[key]
	if prev != nil && prev.kind != kindHistogram {
		panic(fmt.Sprintf("metrics: %s already registered with a different type", key))
	}
	e := &entry{name: name, series: key, kind: kindHistogram, h: h}
	if len(labels) > 0 && (prev == nil || !prev.counted) {
		e.counted = true
		r.labelSets[name]++
	} else if prev != nil {
		e.counted = prev.counted
	}
	r.entries[key] = e
}

// Unregister removes the series identified by name and labels, if present,
// returning its label-set slot to the metric's cardinality budget.
func (r *Registry) Unregister(name string, labels ...string) {
	key := seriesKey(name, labels)
	r.mu.Lock()
	if e := r.entries[key]; e != nil && e.counted {
		r.labelSets[name]--
	}
	delete(r.entries, key)
	r.mu.Unlock()
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4). Histograms are emitted with one cumulative le bucket per
// power of two (25 bounds, 2µs .. 2^25µs, in seconds) plus +Inf, _sum and
// _count. Series are sorted, so output is deterministic for tests.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].series < entries[j].series
	})
	var lastTyped string
	for _, e := range entries {
		if e.name != lastTyped {
			lastTyped = e.name
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, promType(e.kind)); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.series, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", e.series, e.g.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %g\n", e.series, e.fn())
		case kindHistogram:
			err = writePromHistogram(w, e)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func promType(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// writePromHistogram emits name_bucket{...,le="..."} lines with cumulative
// counts, then name_sum (seconds) and name_count.
func writePromHistogram(w io.Writer, e *entry) error {
	counts := e.h.expCounts()
	var cum int64
	for exp, n := range counts {
		cum += n
		// Upper bound of exponent bucket exp is 2^(exp+1) µs.
		le := float64(int64(1)<<(exp+1)) / 1e6
		if _, err := fmt.Fprintf(w, "%s %d\n", bucketSeries(e.name, e.series, fmt.Sprintf("%g", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", bucketSeries(e.name, e.series, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %g\n", suffixSeries(e.name, e.series, "_sum"), e.h.Sum().Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffixSeries(e.name, e.series, "_count"), e.h.Count())
	return err
}

// bucketSeries splices an le label into a series: name{a="b"} + le=x ->
// name_bucket{a="b",le="x"}.
func bucketSeries(name, series, le string) string {
	labels := strings.TrimPrefix(series, name)
	if labels == "" {
		return name + `_bucket{le="` + le + `"}`
	}
	// labels is "{...}"; insert before the closing brace.
	return name + "_bucket" + labels[:len(labels)-1] + `,le="` + le + `"}`
}

func suffixSeries(name, series, suffix string) string {
	return name + suffix + strings.TrimPrefix(series, name)
}

// Uptime tracks process start for /statusz; set once at registry creation.
var processStart = time.Now()

// ProcessUptime returns how long the process has been running.
func ProcessUptime() time.Duration { return time.Since(processStart) }
