package metrics

import "sync/atomic"

// Latency sampling for the data path. On hosts with a slow clocksource a
// time.Now/time.Since pair costs more than the rest of an op's bookkeeping
// combined (~60ns per clock read on some VMs, vs single-digit-ns atomics),
// so the per-request server loops time 1-in-N requests instead of every
// one. Op counters stay exact; latency histograms hold a uniform sample,
// so sum/count still estimates the true mean and quantiles keep their
// distribution. Traced requests are always timed — the span needs its
// duration regardless — which callers handle by OR-ing the trace decision
// into SampleLatency's answer.
var (
	latTick  atomic.Uint64
	latEvery atomic.Uint64
)

const defaultLatencySampleEvery = 8

func init() { latEvery.Store(defaultLatencySampleEvery) }

// SampleLatency reports whether this request should pay for a clock pair
// and a histogram observe. Deterministic round-robin 1-in-N.
func SampleLatency() bool {
	return latTick.Add(1)%latEvery.Load() == 0
}

// SetLatencySampleEvery makes every n-th request timed (n < 1 is treated
// as 1, timing everything) and returns the previous period. Tests use it
// to make histogram counts deterministic.
func SetLatencySampleEvery(n uint64) uint64 {
	if n < 1 {
		n = 1
	}
	return latEvery.Swap(n)
}
