package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	mean := h.Mean()
	if mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Fatalf("mean=%v, want ~50ms", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 30*time.Millisecond || p50 > 70*time.Millisecond {
		t.Fatalf("p50=%v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 80*time.Millisecond {
		t.Fatalf("p99=%v", p99)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max=%v", h.Max())
	}
	if h.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(1+i%1000) * time.Microsecond)
	}
	q50, q95, q99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(q50 <= q95 && q95 <= q99) {
		t.Fatalf("quantiles not ordered: %v %v %v", q50, q95, q99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must be all zero")
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(time.Nanosecond) // below 1µs clamps to first bucket
	h.Observe(time.Hour)       // above range clamps to last bucket
	if h.Count() != 2 {
		t.Fatal("observations lost")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w*i%5000+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count=%d", h.Count())
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(500)
	time.Sleep(50 * time.Millisecond)
	if tp.Ops() != 500 {
		t.Fatalf("ops=%d", tp.Ops())
	}
	qps := tp.PerSecond()
	if qps <= 0 || qps > 500/0.05*2 {
		t.Fatalf("qps=%f", qps)
	}
	kqps := tp.KQPS()
	if kqps <= 0 || kqps > qps/1000*1.5 {
		t.Fatalf("kqps=%f vs qps=%f", kqps, qps)
	}
}

func TestTimelineBins(t *testing.T) {
	tl := NewTimeline(20 * time.Millisecond)
	for i := 0; i < 10; i++ {
		tl.Record()
	}
	time.Sleep(25 * time.Millisecond)
	tl.Mark("event")
	for i := 0; i < 5; i++ {
		tl.Record()
	}
	pts := tl.Series()
	if len(pts) < 2 {
		t.Fatalf("series has %d bins", len(pts))
	}
	if pts[0].QPS != 10/0.02 {
		t.Fatalf("bin 0 qps=%f", pts[0].QPS)
	}
	marks := tl.Marks()
	if marks["event"] < 20*time.Millisecond {
		t.Fatalf("mark at %v", marks["event"])
	}
	// Mutating the returned map must not affect internals.
	marks["evil"] = 0
	if len(tl.Marks()) != 1 {
		t.Fatal("Marks leaked internal map")
	}
}

func TestTimelineConcurrent(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tl.Record()
			}
		}()
	}
	wg.Wait()
	total := 0.0
	for _, p := range tl.Series() {
		total += p.QPS * 0.01
	}
	if int(total+0.5) != 4000 {
		t.Fatalf("timeline lost records: %f", total)
	}
}
