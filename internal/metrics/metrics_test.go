package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	mean := h.Mean()
	if mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Fatalf("mean=%v, want ~50ms", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 30*time.Millisecond || p50 > 70*time.Millisecond {
		t.Fatalf("p50=%v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 80*time.Millisecond {
		t.Fatalf("p99=%v", p99)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max=%v", h.Max())
	}
	if h.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(1+i%1000) * time.Microsecond)
	}
	q50, q95, q99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(q50 <= q95 && q95 <= q99) {
		t.Fatalf("quantiles not ordered: %v %v %v", q50, q95, q99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must be all zero")
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(time.Nanosecond) // below 1µs clamps to first bucket
	h.Observe(time.Hour)       // above range clamps to last bucket
	if h.Count() != 2 {
		t.Fatal("observations lost")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w*i%5000+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count=%d", h.Count())
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(500)
	time.Sleep(50 * time.Millisecond)
	if tp.Ops() != 500 {
		t.Fatalf("ops=%d", tp.Ops())
	}
	qps := tp.PerSecond()
	if qps <= 0 || qps > 500/0.05*2 {
		t.Fatalf("qps=%f", qps)
	}
	kqps := tp.KQPS()
	if kqps <= 0 || kqps > qps/1000*1.5 {
		t.Fatalf("kqps=%f vs qps=%f", kqps, qps)
	}
}

func TestTimelineBins(t *testing.T) {
	tl := NewTimeline(20 * time.Millisecond)
	for i := 0; i < 10; i++ {
		tl.Record()
	}
	time.Sleep(25 * time.Millisecond)
	tl.Mark("event")
	for i := 0; i < 5; i++ {
		tl.Record()
	}
	pts := tl.Series()
	if len(pts) < 2 {
		t.Fatalf("series has %d bins", len(pts))
	}
	if pts[0].QPS != 10/0.02 {
		t.Fatalf("bin 0 qps=%f", pts[0].QPS)
	}
	marks := tl.Marks()
	if marks["event"] < 20*time.Millisecond {
		t.Fatalf("mark at %v", marks["event"])
	}
	// Mutating the returned map must not affect internals.
	marks["evil"] = 0
	if len(tl.Marks()) != 1 {
		t.Fatal("Marks leaked internal map")
	}
}

func TestTimelineConcurrent(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tl.Record()
			}
		}()
	}
	wg.Wait()
	total := 0.0
	for _, p := range tl.Series() {
		total += p.QPS * 0.01
	}
	if int(total+0.5) != 4000 {
		t.Fatalf("timeline lost records: %f", total)
	}
}

// TestBucketBoundaries table-drives bucketOf over every power-of-two
// boundary (1µs .. 2^24µs, each ±1µs) against an integer reference,
// guarding the bits.Len64 rewrite of the old float math.Log2 version.
func TestBucketBoundaries(t *testing.T) {
	ref := func(us int64) int {
		if us < 1 {
			us = 1
		}
		exp := 0
		for int64(1)<<(exp+1) <= us && exp < 24 {
			exp++
		}
		base := int64(1) << exp
		sub := int((us - base) * subBuckets / base)
		if sub >= subBuckets {
			sub = subBuckets - 1
		}
		return exp*subBuckets + sub
	}
	var cases []int64
	for exp := 0; exp <= 24; exp++ {
		p := int64(1) << exp
		cases = append(cases, p-1, p, p+1)
	}
	cases = append(cases, 0, 3, 5, 7, 100, 999, 123456, int64(1)<<30)
	for _, us := range cases {
		got := bucketOf(time.Duration(us) * time.Microsecond)
		want := ref(us)
		if got != want {
			t.Errorf("bucketOf(%dµs)=%d, want %d", us, got, want)
		}
		if us >= 1 && us == int64(1)<<uint(bitsLenRef(us)-1) && us <= 1<<24 {
			// Exact powers of two must land on the first sub-bucket of
			// their exponent — the case float log2 used to get wrong.
			if got%subBuckets != 0 {
				t.Errorf("bucketOf(%dµs)=%d not at sub-bucket 0", us, got)
			}
		}
	}
	// Monotonic: bucket index never decreases as the value grows.
	prev := -1
	for us := int64(1); us <= 1<<20; us = us*7/4 + 1 {
		b := bucketOf(time.Duration(us) * time.Microsecond)
		if b < prev {
			t.Fatalf("bucketOf not monotonic at %dµs: %d < %d", us, b, prev)
		}
		prev = b
	}
}

func bitsLenRef(v int64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

func TestQuantileClamping(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	// q >= 1 returns the exact max, not a bucket midpoint.
	if got := h.Quantile(1.0); got != h.Max() {
		t.Fatalf("Quantile(1.0)=%v, want Max()=%v", got, h.Max())
	}
	if got := h.Quantile(2.5); got != h.Max() {
		t.Fatalf("Quantile(2.5)=%v, want Max()=%v", got, h.Max())
	}
	// q <= 0 clamps to the smallest positive quantile.
	lo := h.Quantile(0)
	neg := h.Quantile(-1)
	if lo != neg {
		t.Fatalf("Quantile(0)=%v vs Quantile(-1)=%v", lo, neg)
	}
	if lo <= 0 || lo > 2*time.Microsecond {
		t.Fatalf("Quantile(0)=%v, want first bucket mid", lo)
	}
	// Empty histogram stays zero for any q.
	var empty Histogram
	if empty.Quantile(1.0) != 0 || empty.Quantile(-1) != 0 {
		t.Fatal("empty histogram quantiles must be 0")
	}
}

func TestThroughputZeroValue(t *testing.T) {
	var tp Throughput
	tp.Add(1000)
	if got := tp.PerSecond(); got != 0 {
		t.Fatalf("zero-value Throughput PerSecond()=%f, want 0", got)
	}
	if got := tp.KQPS(); got != 0 {
		t.Fatalf("zero-value Throughput KQPS()=%f, want 0", got)
	}
	if tp.Ops() != 1000 {
		t.Fatalf("ops=%d", tp.Ops())
	}
	// A properly constructed one still measures.
	live := NewThroughput()
	live.Add(100)
	time.Sleep(5 * time.Millisecond)
	if live.PerSecond() <= 0 {
		t.Fatal("live throughput must be positive")
	}
}

func TestLatencySampling(t *testing.T) {
	prev := SetLatencySampleEvery(4)
	defer SetLatencySampleEvery(prev)
	hits := 0
	for i := 0; i < 400; i++ {
		if SampleLatency() {
			hits++
		}
	}
	// Deterministic round-robin: exactly 1 in 4, regardless of where the
	// shared tick counter started.
	if hits != 100 {
		t.Fatalf("SampleLatency hit %d of 400 with period 4, want 100", hits)
	}
	SetLatencySampleEvery(1)
	for i := 0; i < 10; i++ {
		if !SampleLatency() {
			t.Fatal("period 1 must time every request")
		}
	}
	// n < 1 clamps to 1 rather than dividing by zero.
	SetLatencySampleEvery(0)
	if !SampleLatency() {
		t.Fatal("period 0 must behave like 1")
	}
}
