package cluster

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"bespokv/internal/coordinator"
	"bespokv/internal/dlm"
	"bespokv/internal/rsm"
	"bespokv/internal/sharedlog"
	"bespokv/internal/store/wal"
	"bespokv/internal/transport"
)

// ctlAddrSeq keeps replicated control-plane addresses unique across
// clusters sharing one process-wide inproc namespace.
var ctlAddrSeq atomic.Uint64

// controlPeers builds the fixed ID→address table for one control group.
func controlPeers(service string, n int, seq uint64) ([]string, map[string]string) {
	ids := make([]string, 0, n)
	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-%d", service, i)
		ids = append(ids, id)
		peers[id] = fmt.Sprintf("ctl-%s-%d-%d", service, seq, i)
	}
	return ids, peers
}

// groupConfig builds one member's RSM config; every member gets its own
// MemFS so a member kill loses nothing another member needs.
func (c *Cluster) groupConfig(id string, peers map[string]string) *rsm.GroupConfig {
	return &rsm.GroupConfig{
		ID:              id,
		Peers:           peers,
		Dir:             "ctl",
		FS:              wal.NewMemFS(),
		ElectionTimeout: c.Opts.ControlElectionTimeout,
	}
}

// startReplicatedControl boots the three control-plane RSM groups. Each
// member dials and listens through its own fabric host view, so nemesis
// schedules can kill or partition exactly the current leader.
func (c *Cluster) startReplicatedControl(net transport.Network) error {
	n := c.Opts.ReplicatedControl
	seq := ctlAddrSeq.Add(1)
	c.ctlAddrs = map[string]string{}

	coordIDs, coordPeers := controlPeers("coord", n, seq)
	for _, id := range coordIDs {
		srv, err := coordinator.Serve(coordinator.Config{
			Network:          c.hostNet(net, id),
			Addr:             coordPeers[id],
			HeartbeatTimeout: c.Opts.HeartbeatTimeout,
			DisableFailover:  c.Opts.DisableFailover,
			SLOs:             c.Opts.SLOs,
			Replication:      c.groupConfig(id, coordPeers),
			Logf:             c.Opts.Logf,
		})
		if err != nil {
			return err
		}
		c.Coords = append(c.Coords, srv)
		c.ctlAddrs[id] = coordPeers[id]
	}
	c.coordIDs = coordIDs
	c.Coord = c.Coords[0]

	dlmIDs, dlmPeers := controlPeers("dlm", n, seq)
	for _, id := range dlmIDs {
		srv, err := dlm.Serve(dlm.Config{
			Network:     c.hostNet(net, id),
			Addr:        dlmPeers[id],
			Replication: c.groupConfig(id, dlmPeers),
			Logf:        c.Opts.Logf,
		})
		if err != nil {
			return err
		}
		c.DLMs = append(c.DLMs, srv)
		c.ctlAddrs[id] = dlmPeers[id]
	}
	c.dlmIDs = dlmIDs
	c.DLM = c.DLMs[0]

	logIDs, logPeers := controlPeers("log", n, seq)
	for _, id := range logIDs {
		srv, err := sharedlog.Serve(sharedlog.Config{
			Network:     c.hostNet(net, id),
			Addr:        logPeers[id],
			Replication: c.groupConfig(id, logPeers),
			Logf:        c.Opts.Logf,
		})
		if err != nil {
			return err
		}
		c.Logs = append(c.Logs, srv)
		c.ctlAddrs[id] = logPeers[id]
	}
	c.logIDs = logIDs
	c.Log = c.Logs[0]

	// Wait for every group to elect before the data plane starts talking
	// to it; Start's own SetMap retries would mask slow elections, but
	// failing fast here makes misconfigurations obvious.
	for _, wait := range []func(time.Duration) error{c.waitCoordLeader, c.waitDLMLeader, c.waitLogLeader} {
		if err := wait(5 * time.Second); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) waitCoordLeader(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, s := c.CoordLeader(); s != nil {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster: no coordinator leader within %v", timeout)
}

func (c *Cluster) waitDLMLeader(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, s := range c.DLMs {
			if s.IsLeader() {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster: no dlm leader within %v", timeout)
}

func (c *Cluster) waitLogLeader(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, s := range c.Logs {
			if s.IsLeader() {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster: no sequencer leader within %v", timeout)
}

// coordAddr returns what clients should dial for the coordinator: the full
// member list (comma-joined, rotation-aware clients split it) in
// replicated mode, the single server otherwise.
func (c *Cluster) coordAddr() string {
	if len(c.coordIDs) > 0 {
		return c.joinAddrs(c.coordIDs)
	}
	return c.Coord.Addr()
}

func (c *Cluster) dlmAddr() string {
	if len(c.dlmIDs) > 0 {
		return c.joinAddrs(c.dlmIDs)
	}
	return c.DLM.Addr()
}

func (c *Cluster) logAddr() string {
	if len(c.logIDs) > 0 {
		return c.joinAddrs(c.logIDs)
	}
	return c.Log.Addr()
}

func (c *Cluster) joinAddrs(ids []string) string {
	addrs := make([]string, 0, len(ids))
	for _, id := range ids {
		addrs = append(addrs, c.ctlAddrs[id])
	}
	return strings.Join(addrs, ",")
}

// CoordLeader returns the coordinator member currently leading and its
// fabric host name ("" and nil when no member leads right now).
func (c *Cluster) CoordLeader() (string, *coordinator.Server) {
	for i, s := range c.Coords {
		if s.IsLeader() {
			return c.coordIDs[i], s
		}
	}
	return "", nil
}

// WaitCoordLeader blocks until some coordinator member leads, returning
// its fabric host name.
func (c *Cluster) WaitCoordLeader(timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if id, s := c.CoordLeader(); s != nil {
			return id, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "", fmt.Errorf("cluster: no coordinator leader within %v", timeout)
}

// KillCoordLeader closes the coordinator member currently leading —
// the control-plane nemesis — returning its fabric host name.
func (c *Cluster) KillCoordLeader() (string, error) {
	id, s := c.CoordLeader()
	if s == nil {
		return "", fmt.Errorf("cluster: no coordinator leader to kill")
	}
	_ = s.Close()
	return id, nil
}

// ControlHosts returns the fabric host names of all control-plane members
// (empty in standalone mode), for building nemesis schedules.
func (c *Cluster) ControlHosts() []string {
	var hs []string
	hs = append(hs, c.coordIDs...)
	hs = append(hs, c.dlmIDs...)
	hs = append(hs, c.logIDs...)
	return hs
}
