package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/topology"
)

var (
	msSC = topology.Mode{Topology: topology.MS, Consistency: topology.Strong}
	msEC = topology.Mode{Topology: topology.MS, Consistency: topology.Eventual}
	aaSC = topology.Mode{Topology: topology.AA, Consistency: topology.Strong}
	aaEC = topology.Mode{Topology: topology.AA, Consistency: topology.Eventual}
)

// TestTransitionPreservesData switches modes with data at rest and checks
// every key survives with no migration (§V: datalets never change).
func TestTransitionPreservesData(t *testing.T) {
	hops := []struct {
		from, to topology.Mode
	}{
		{msEC, msSC}, // §V-A
		{aaEC, msEC}, // §V-B
		{msSC, msEC}, // trivial direction ("reverse transition is trivial")
		{msEC, aaEC}, // reverse of §V-B
		{msSC, aaSC},
		{aaSC, aaEC},
	}
	for _, hop := range hops {
		hop := hop
		t.Run(hop.from.String()+"->"+hop.to.String(), func(t *testing.T) {
			c := startCluster(t, Options{
				Mode:            hop.from,
				Shards:          2,
				Replicas:        3,
				DisableFailover: true,
			})
			cli, err := c.Client()
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			const n = 60
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("key-%03d", i))
				if err := cli.Put("", k, k); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Transition(hop.to); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("key-%03d", i))
				eventually(t, 10*time.Second, func() string {
					v, ok, err := cli.Get("", k)
					if err != nil || !ok || string(v) != string(k) {
						return fmt.Sprintf("key %s after transition: (%q,%v,%v)", k, v, ok, err)
					}
					return ""
				})
			}
			// Writes work in the new mode.
			if err := cli.Put("", []byte("post-transition"), []byte("ok")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTransitionUnderLoad runs a client workload across an MS+EC→MS+SC
// switch: no downtime (writes keep succeeding, possibly after client
// retries) and no acked write is lost.
func TestTransitionUnderLoad(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            msEC,
		Shards:          3,
		Replicas:        3,
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var acked sync.Map // key → value
	var seq atomic.Uint64
	stop := make(chan struct{})
	var failures atomic.Uint64
	var writes atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcli, err := c.Client()
			if err != nil {
				return
			}
			defer wcli.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := seq.Add(1)
				k := []byte(fmt.Sprintf("key-%06d", i))
				if err := wcli.Put("", k, k); err != nil {
					failures.Add(1)
					continue
				}
				writes.Add(1)
				acked.Store(string(k), string(k))
			}
		}(w)
	}

	time.Sleep(300 * time.Millisecond)
	if err := c.Transition(msSC); err != nil {
		close(stop)
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if writes.Load() == 0 {
		t.Fatal("no writes succeeded at all")
	}
	t.Logf("writes=%d failures=%d across the transition", writes.Load(), failures.Load())

	// Every acknowledged write must be readable after the transition.
	lost := 0
	acked.Range(func(k, v any) bool {
		key := []byte(k.(string))
		found := false
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			val, ok, err := cli.Get("", key)
			if err == nil && ok && string(val) == v.(string) {
				found = true
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !found {
			lost++
			t.Errorf("acked write %s lost across transition", key)
		}
		return lost < 10 // cap the error spam
	})
}

// TestTransitionAAECToMSEC covers the §V-B direction with writes in
// flight through the shared log.
func TestTransitionAAECToMSEC(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            aaEC,
		Shards:          1,
		Replicas:        3,
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 80
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Transition(msEC); err != nil {
		t.Fatal(err)
	}
	// Everything appended to the log before the drain must be on every
	// replica now; the new master serves it.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		eventually(t, 10*time.Second, func() string {
			v, ok, err := cli.Get("", k)
			if err != nil || !ok {
				return fmt.Sprintf("key %s lost across AA+EC→MS+EC: (%q,%v,%v)", k, v, ok, err)
			}
			return ""
		})
	}
	// Overwrites in the new mode beat pre-transition values (version
	// ordering across the AA+EC epoch boundary).
	if err := cli.Put("", []byte("key-000"), []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	eventually(t, 5*time.Second, func() string {
		v, ok, err := cli.Get("", []byte("key-000"))
		if err != nil || !ok || string(v) != "overwritten" {
			return fmt.Sprintf("post-transition overwrite lost: (%q,%v,%v)", v, ok, err)
		}
		return ""
	})
}

// TestChainedTransitions walks through several modes in sequence, the
// "adapt as requirements change" story of §V.
func TestChainedTransitions(t *testing.T) {
	if testing.Short() {
		t.Skip("chained transitions in -short mode")
	}
	c := startCluster(t, Options{Mode: msEC, Shards: 2, Replicas: 2, DisableFailover: true})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put("", []byte("durable"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for _, to := range []topology.Mode{msSC, aaEC, msEC, aaSC} {
		if err := c.Transition(to); err != nil {
			t.Fatalf("transition to %s: %v", to, err)
		}
		eventually(t, 10*time.Second, func() string {
			v, ok, err := cli.Get("", []byte("durable"))
			if err != nil || !ok {
				return fmt.Sprintf("durable key missing in %s: (%q,%v,%v)", to, v, ok, err)
			}
			return ""
		})
		k := []byte("written-in-" + to.String())
		eventually(t, 10*time.Second, func() string {
			if err := cli.Put("", k, k); err != nil {
				return err.Error()
			}
			return ""
		})
	}
}
