package cluster

import (
	"fmt"
	"testing"

	"bespokv/internal/datalet"
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// TestP2PRoutingAnyControletServesAnyKey covers the §IV-E P2P-style
// topology: a client that only knows ONE controlet can reach every key —
// the controlet routes foreign keys to their owning shard and relays.
func TestP2PRoutingAnyControletServesAnyKey(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          4,
		Replicas:        2,
		P2PRouting:      true,
		DisableFailover: true,
	})
	// Talk to exactly one controlet (shard 0's head) for everything.
	raw, err := datalet.Dial(c.Net, c.Shards[0][0].Controlet.DataAddr(), c.Codec)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var resp wire.Response
	const n = 100
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := raw.Do(&wire.Request{Op: wire.OpPut, Key: k, Value: k}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("put %s via single entry point: %+v", k, resp)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := raw.Do(&wire.Request{Op: wire.OpGet, Key: k}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusOK || string(resp.Value) != string(k) {
			t.Fatalf("get %s via single entry point: %+v", k, resp)
		}
	}
	// Keys actually landed on several shards — the entry point really
	// forwarded rather than hoarding them.
	populated := 0
	for _, pairs := range c.Shards {
		if pairs[0].Datalet.Engine("").Len() > 0 {
			populated++
		}
	}
	if populated < 3 {
		t.Fatalf("only %d/4 shards populated; P2P routing not spreading keys", populated)
	}
	// Deletes route too.
	if err := raw.Do(&wire.Request{Op: wire.OpDel, Key: []byte("key-0001")}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("del via entry point: %+v", resp)
	}
}

// TestP2PRoutingDisabledRedirects confirms the default behaviour stays
// redirect-based (clients route; controlets refuse foreign keys under MS).
func TestP2PRoutingDisabledRedirects(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          4,
		Replicas:        2,
		DisableFailover: true,
	})
	raw, err := datalet.Dial(c.Net, c.Shards[0][0].Controlet.DataAddr(), c.Codec)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var resp wire.Response
	sawRedirectOrOK := 0
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := raw.Do(&wire.Request{Op: wire.OpPut, Key: k, Value: k}, &resp); err != nil {
			t.Fatal(err)
		}
		switch resp.Status {
		case wire.StatusOK, wire.StatusRedirect:
			sawRedirectOrOK++
		default:
			t.Fatalf("unexpected status for %s: %+v", k, resp)
		}
	}
	if sawRedirectOrOK != 50 {
		t.Fatalf("got %d OK/redirect of 50", sawRedirectOrOK)
	}
}
