package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/topology"
)

// TestChaosKillsUnderMSSC runs a write workload against an MS+SC cluster
// while killing replicas at random (with standbys available for recovery),
// then verifies the strong-consistency contract: every acknowledged write
// is readable afterwards. Chain replication acks only after the tail
// applied, so no failover sequence may lose an acked write.
func TestChaosKillsUnderMSSC(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test in -short mode")
	}
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:           3,
		Replicas:         3,
		Standbys:         2,
		HeartbeatTimeout: 400 * time.Millisecond,
	})

	var acked sync.Map
	var seq atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ackedN, failedN atomic.Uint64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := c.Client()
			if err != nil {
				return
			}
			defer cli.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := seq.Add(1)
				k := fmt.Sprintf("chaos-%06d", i)
				if err := cli.Put("", []byte(k), []byte(k)); err != nil {
					failedN.Add(1)
					continue
				}
				ackedN.Add(1)
				acked.Store(k, true)
			}
		}(w)
	}

	// Kill two nodes in different shards, spaced out so recovery runs.
	rng := rand.New(rand.NewSource(7))
	time.Sleep(400 * time.Millisecond)
	c.KillNode(0, rng.Intn(3))
	time.Sleep(1200 * time.Millisecond)
	c.KillNode(1, rng.Intn(3))
	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()

	t.Logf("chaos run: %d acked, %d failed transiently", ackedN.Load(), failedN.Load())
	if ackedN.Load() == 0 {
		t.Fatal("no writes succeeded during the chaos run")
	}

	// Every acked write must be readable afterwards.
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	lost := 0
	acked.Range(func(key, _ any) bool {
		k := []byte(key.(string))
		deadline := time.Now().Add(5 * time.Second)
		for {
			v, ok, err := cli.Get("", k)
			if err == nil && ok && string(v) == key.(string) {
				return true
			}
			if time.Now().After(deadline) {
				lost++
				t.Errorf("acked write %s lost (ok=%v err=%v)", k, ok, err)
				return lost < 10
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}
