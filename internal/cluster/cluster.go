// Package cluster is the in-process deployment harness: it assembles a
// complete bespokv cluster — coordinator, DLM, shared log, N shards × R
// replicas of controlet+datalet pairs, and optional standbys — inside one
// process, over the inproc or tcp transport. Tests, benchmarks and the
// examples all deploy through it; it is this reproduction's substitute for
// the paper's GCE/testbed provisioning scripts (slap.sh), with node kills
// and live transitions exposed as methods.
package cluster

import (
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"bespokv/internal/client"
	"bespokv/internal/controlet"
	"bespokv/internal/coordinator"
	"bespokv/internal/datalet"
	"bespokv/internal/dlm"
	"bespokv/internal/faultnet"
	"bespokv/internal/rpc"
	"bespokv/internal/sharedlog"
	"bespokv/internal/store"
	"bespokv/internal/store/applog"
	"bespokv/internal/store/btree"
	"bespokv/internal/store/faultfs"
	"bespokv/internal/store/ht"
	"bespokv/internal/store/lsm"
	"bespokv/internal/store/wal"
	"bespokv/internal/telemetry"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

// Options configure a cluster.
type Options struct {
	// NetworkName is "inproc" (default) or "tcp".
	NetworkName string
	// Shards and Replicas shape the data plane (defaults 1 and 3).
	Shards   int
	Replicas int
	// Mode is the topology+consistency pair (default MS+SC).
	Mode topology.Mode
	// Engine names the datalet engine for every replica: "ht" (default),
	// "btree", "applog", "lsm".
	Engine string
	// EnginesByReplica overrides Engine per replica index — the polyglot
	// persistence setup (§IV-D): e.g. {"lsm","btree","applog"}.
	EnginesByReplica []string
	// CodecName is the client↔controlet protocol (default "binary").
	CodecName string
	// DataletCodecName is the controlet↔datalet protocol (default
	// CodecName); "text" exercises the tRedis/tSSDB parser path.
	DataletCodecName string
	// Partitioner defaults to consistent hashing; range partitioning
	// enables cross-shard scans.
	Partitioner topology.Partitioner
	// Standbys pre-provisions spare pairs for failover (default 0).
	Standbys int
	// DataDir persists applog/lsm engines under per-node directories.
	DataDir string
	// Durable gives every node a private crash-faithful filesystem
	// (faultfs) and opens its engines in write-ahead-logged durable mode;
	// requires Engine "ht" or "lsm". Crash and Restart then emulate
	// kill -9 plus reboot: unsynced data is lost, fsynced data survives,
	// and a restarted node rejoins with an incremental delta.
	Durable bool
	// Seed derives each node's faultfs seed; same seed, same torn-write
	// behavior. Used with Durable.
	Seed int64
	// HeartbeatTimeout and HeartbeatInterval tune failure detection
	// (defaults 800ms / 100ms — scaled-down versions of the paper's 5s).
	HeartbeatTimeout  time.Duration
	HeartbeatInterval time.Duration
	// SLOs installs the telemetry aggregator's alerting policy (default
	// telemetry.DefaultObjectives()); tests shrink windows and thresholds
	// to drive pending→firing→resolved transitions quickly.
	SLOs []telemetry.Objective
	// TelemetryInterval is the node-side workload-stats window width
	// (default HeartbeatInterval, so every heartbeat ships fresh windows).
	TelemetryInterval time.Duration
	// DisableFailover turns the coordinator's failure detector off.
	DisableFailover bool
	// ReplicatedControl, when > 0, runs each control-plane service —
	// coordinator, DLM, and shared-log sequencer — as an N-member RSM
	// group instead of a single process (3 is the useful value). Members
	// appear to the fault fabric as hosts "coord-0".."coord-N-1",
	// "dlm-0".. and "log-0".., so nemesis schedules can kill or partition
	// the current leader specifically. Clients and controlets get the
	// full member list and rotate on NotLeader. Inproc transport only
	// (RSM peers need fixed addresses known before any member starts).
	ReplicatedControl int
	// ControlElectionTimeout tunes the control-plane RSM groups' election
	// timeout (default 150ms); re-election after a leader kill lands
	// within a few multiples of this.
	ControlElectionTimeout time.Duration
	// P2PRouting enables the §IV-E P2P-style topology: any controlet
	// accepts any key and routes it to the owning shard.
	P2PRouting bool
	// MaxInflight caps concurrently executing data ops at every controlet
	// and datalet listener (admission control; see internal/overload).
	// 0 keeps the servers' defaults; < 0 disables gating.
	MaxInflight int
	// ShedTarget is the admission gates' CoDel sojourn target (default
	// 5ms); overload tests shrink it so a surge engages shedding quickly.
	ShedTarget time.Duration
	// EngineLatency adds a fixed service delay to every engine Put, Get
	// and Delete on every datalet — the overload suite's way of giving
	// each op a real service time, so a surge builds genuine queues
	// instead of being absorbed by microsecond hash-table writes. 0
	// disables.
	EngineLatency time.Duration
	// Fabric, when set, interposes the faultnet fault plane on every
	// connection: components dial and listen through named host views of
	// the fabric (pair node IDs for the data plane; "coord", "dlm", "log"
	// for the control services; "client" and "admin" for clients and the
	// harness itself) so nemesis schedules can drop, delay, reorder or
	// partition traffic between specific components. The fabric must wrap
	// the same transport NetworkName names; any component on a different
	// transport (e.g. collocated inproc datalets under tcp) bypasses it.
	Fabric *faultnet.Fabric
	// CollocatedDatalets keeps datalets on the in-process transport even
	// when the cluster runs over tcp — the paper's physical layout, where
	// each controlet–datalet pair shares one machine and the local hop is
	// nearly free while cross-node hops pay the network. No effect when
	// NetworkName is already "inproc".
	CollocatedDatalets bool
	// Logf receives diagnostics from every component; nil discards them
	// (the harness is used in benchmarks where log noise skews numbers).
	Logf func(format string, args ...any)
}

// Pair is one controlet–datalet unit.
type Pair struct {
	Node      topology.Node
	Datalet   *datalet.Server
	Controlet *controlet.Server
	killed    atomic.Bool

	// Restart metadata: the shard the pair belongs to, the engine it
	// runs, and (under Options.Durable) its private crash-faithful
	// filesystem, which survives the pair so a restarted instance
	// recovers from it.
	shardID string
	engine  string
	fs      *faultfs.FS
}

// FS returns the pair's fault-injecting filesystem (nil unless the
// cluster runs with Options.Durable); tests use it for white-box fault
// injection.
func (p *Pair) FS() *faultfs.FS { return p.fs }

// Kill abruptly stops the pair (both processes), emulating a node crash.
func (p *Pair) Kill() {
	if p.killed.Swap(true) {
		return
	}
	_ = p.Controlet.Close()
	_ = p.Datalet.Close()
}

// Killed reports whether the pair was killed.
func (p *Pair) Killed() bool { return p.killed.Load() }

// Cluster is a running in-process deployment.
type Cluster struct {
	Opts  Options
	Net   transport.Network
	Codec wire.Codec
	Coord *coordinator.Server
	DLM   *dlm.Server
	Log   *sharedlog.Server
	// Replicated control plane (Options.ReplicatedControl > 0): all
	// members of each group, aligned with their fabric host names. Coord,
	// DLM and Log then point at member 0 for back-compat; prefer the
	// leader helpers, member 0 may be killed or a follower.
	Coords   []*coordinator.Server
	DLMs     []*dlm.Server
	Logs     []*sharedlog.Server
	coordIDs []string
	dlmIDs   []string
	logIDs   []string
	ctlAddrs map[string]string // fabric host -> listen address
	Shards   [][]*Pair         // [shard][replica]
	Standbys []*Pair
	oldPairs []*Pair // pre-transition controlets kept until Close
	nameSeq  atomic.Uint64

	fsMu   sync.Mutex
	nodeFS map[string]*faultfs.FS // nodeID -> durable filesystem
}

func (o *Options) defaults() error {
	if o.NetworkName == "" {
		o.NetworkName = "inproc"
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.Mode == (topology.Mode{}) {
		o.Mode = topology.Mode{Topology: topology.MS, Consistency: topology.Strong}
	}
	if !o.Mode.Valid() {
		return fmt.Errorf("cluster: invalid mode %s", o.Mode)
	}
	if o.Engine == "" {
		o.Engine = "ht"
	}
	if o.CodecName == "" {
		o.CodecName = "binary"
	}
	if o.DataletCodecName == "" {
		o.DataletCodecName = o.CodecName
	}
	if o.Partitioner == "" {
		o.Partitioner = topology.HashPartitioner
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 800 * time.Millisecond
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 100 * time.Millisecond
	}
	if o.TelemetryInterval <= 0 {
		o.TelemetryInterval = o.HeartbeatInterval
	}
	if o.ControlElectionTimeout <= 0 {
		o.ControlElectionTimeout = 150 * time.Millisecond
	}
	if o.ReplicatedControl > 0 && o.NetworkName != "inproc" {
		return fmt.Errorf("cluster: ReplicatedControl requires the inproc transport")
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if len(o.EnginesByReplica) != 0 && len(o.EnginesByReplica) != o.Replicas {
		return fmt.Errorf("cluster: EnginesByReplica has %d entries for %d replicas",
			len(o.EnginesByReplica), o.Replicas)
	}
	if o.Durable {
		engines := o.EnginesByReplica
		if len(engines) == 0 {
			engines = []string{o.Engine}
		}
		for _, e := range engines {
			if e != "ht" && e != "lsm" {
				return fmt.Errorf("cluster: engine %q does not support Durable (use ht or lsm)", e)
			}
		}
	}
	return nil
}

// fsFor returns (creating on first use) the durable filesystem for a node.
// The filesystem outlives any one pair: a restarted node opens the same
// one and recovers whatever its predecessor made durable.
func (c *Cluster) fsFor(nodeID string) *faultfs.FS {
	c.fsMu.Lock()
	defer c.fsMu.Unlock()
	if c.nodeFS == nil {
		c.nodeFS = map[string]*faultfs.FS{}
	}
	fs, ok := c.nodeFS[nodeID]
	if !ok {
		fs = faultfs.New(c.Opts.Seed ^ int64(crc32.ChecksumIEEE([]byte(nodeID))))
		c.nodeFS[nodeID] = fs
	}
	return fs
}

// durableEngineFactory builds the NewEngine function for one durable node:
// every table's engine write-ahead-logs over the node's faultfs.
func durableEngineFactory(name string, fs *faultfs.FS) (func(table string) (store.Engine, error), error) {
	switch name {
	case "ht":
		return func(table string) (store.Engine, error) {
			return ht.Open(ht.Options{Dir: wal.Join("data", "t_"+table), FS: fs})
		}, nil
	case "lsm":
		return func(table string) (store.Engine, error) {
			return lsm.New(lsm.Options{Dir: wal.Join("data", "t_"+table), FS: fs, Durable: true})
		}, nil
	default:
		return nil, fmt.Errorf("cluster: engine %q does not support durable mode", name)
	}
}

// slowEngine adds a fixed service delay to the point operations of an
// engine (Options.EngineLatency): a knob that turns an in-process hash
// table into something with a real service time, so overload tests can
// build genuine queues. It deliberately wraps only the store.Engine
// surface — optional interfaces (Versioned, Recovered) are hidden, which
// latency-injection deployments don't use.
type slowEngine struct {
	store.Engine
	delay time.Duration
}

func (s slowEngine) Put(key, value []byte, version uint64) (uint64, error) {
	time.Sleep(s.delay)
	return s.Engine.Put(key, value, version)
}

func (s slowEngine) Get(key []byte) ([]byte, uint64, bool, error) {
	time.Sleep(s.delay)
	return s.Engine.Get(key)
}

func (s slowEngine) Delete(key []byte, version uint64) (bool, uint64, error) {
	time.Sleep(s.delay)
	return s.Engine.Delete(key, version)
}

// engineFactory builds the NewEngine function for one node.
func engineFactory(name, dir string) (func(table string) (store.Engine, error), error) {
	switch name {
	case "ht":
		return func(string) (store.Engine, error) { return ht.New(), nil }, nil
	case "btree":
		return func(string) (store.Engine, error) { return btree.New(), nil }, nil
	case "applog":
		return func(table string) (store.Engine, error) {
			sub := ""
			if dir != "" {
				sub = filepath.Join(dir, "t_"+table)
			}
			return applog.New(applog.Options{Dir: sub})
		}, nil
	case "lsm":
		return func(table string) (store.Engine, error) {
			sub := ""
			if dir != "" {
				sub = filepath.Join(dir, "t_"+table)
			}
			return lsm.New(lsm.Options{Dir: sub})
		}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown engine %q", name)
	}
}

// Start deploys a cluster per opts and waits until it is serving.
func Start(opts Options) (*Cluster, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	net, err := transport.Lookup(opts.NetworkName)
	if err != nil {
		return nil, err
	}
	codec, err := wire.LookupCodec(opts.CodecName)
	if err != nil {
		return nil, err
	}
	dataletCodec, err := wire.LookupCodec(opts.DataletCodecName)
	if err != nil {
		return nil, err
	}

	c := &Cluster{Opts: opts, Net: net, Codec: codec}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}

	// Control services.
	if opts.ReplicatedControl > 0 {
		if err := c.startReplicatedControl(net); err != nil {
			return fail(err)
		}
	} else {
		c.Coord, err = coordinator.Serve(coordinator.Config{
			Network:          c.hostNet(net, "coord"),
			Addr:             listenAddr(opts.NetworkName),
			HeartbeatTimeout: opts.HeartbeatTimeout,
			DisableFailover:  opts.DisableFailover,
			SLOs:             opts.SLOs,
			Logf:             opts.Logf,
		})
		if err != nil {
			return fail(err)
		}
		c.DLM, err = dlm.Serve(dlm.Config{Network: c.hostNet(net, "dlm"), Addr: listenAddr(opts.NetworkName)})
		if err != nil {
			return fail(err)
		}
		c.Log, err = sharedlog.Serve(sharedlog.Config{Network: c.hostNet(net, "log"), Addr: listenAddr(opts.NetworkName)})
		if err != nil {
			return fail(err)
		}
	}

	// Data plane.
	m := &topology.Map{
		Mode:        opts.Mode,
		Partitioner: opts.Partitioner,
	}
	if opts.Partitioner == topology.RangePartitioner {
		m.RangeSplits = topology.UniformSplits(opts.Shards)
	}
	for si := 0; si < opts.Shards; si++ {
		shard := topology.Shard{ID: fmt.Sprintf("shard-%d", si)}
		var pairs []*Pair
		for ri := 0; ri < opts.Replicas; ri++ {
			engine := opts.Engine
			if len(opts.EnginesByReplica) > 0 {
				engine = opts.EnginesByReplica[ri]
			}
			nodeID := fmt.Sprintf("s%d-r%d", si, ri)
			pair, err := c.startPair(nodeID, shard.ID, engine, dataletCodec, opts.Mode)
			if err != nil {
				return fail(err)
			}
			pairs = append(pairs, pair)
			shard.Replicas = append(shard.Replicas, pair.Node)
		}
		c.Shards = append(c.Shards, pairs)
		m.Shards = append(m.Shards, shard)
	}

	// Install the map and give every controlet its first copy directly
	// (faster and more deterministic than waiting for the first push).
	admin, err := coordinator.DialCoordinator(c.hostNet(net, "admin"), c.coordAddr())
	if err != nil {
		return fail(err)
	}
	defer admin.Close()
	epoch, err := admin.SetMap(m)
	if err != nil {
		return fail(err)
	}
	m.Epoch = epoch
	for _, pairs := range c.Shards {
		for _, p := range pairs {
			p.Controlet.SetMap(m)
		}
	}

	// Standbys register last so they are never picked as initial members.
	for i := 0; i < opts.Standbys; i++ {
		engine := opts.Engine
		if len(opts.EnginesByReplica) > 0 {
			engine = opts.EnginesByReplica[opts.Replicas-1]
		}
		nodeID := fmt.Sprintf("standby-%d", i)
		pair, err := c.startPair(nodeID, "", engine, dataletCodec, opts.Mode)
		if err != nil {
			return fail(err)
		}
		pair.Controlet.SetMap(m)
		c.Standbys = append(c.Standbys, pair)
		if err := admin.RegisterStandby(pair.Node); err != nil {
			return fail(err)
		}
	}
	return c, nil
}

// hostNet resolves the network a component should use: the fault fabric's
// view for the named host when one is installed (and wraps this transport),
// otherwise inner unchanged. Every connection made through the returned
// network is attributed to host, so nemesis rules can target it by name.
func (c *Cluster) hostNet(inner transport.Network, host string) transport.Network {
	if f := c.Opts.Fabric; f != nil && f.Inner() == inner {
		return f.Host(host)
	}
	return inner
}

// fenceTimeout is the self-fencing horizon handed to every controlet: the
// coordinator's failure-detection timeout, so a head that cannot reach the
// coordinator stops acking writes at the same moment its replacement can
// be promoted. Zero (fencing off) when failover is disabled — no one will
// be promoted, so serving through a coordinator outage is the better
// availability trade.
func (c *Cluster) fenceTimeout() time.Duration {
	if c.Opts.DisableFailover {
		return 0
	}
	return c.Opts.HeartbeatTimeout
}

// Hosts returns the fabric host names of the live data nodes (shard
// replicas, then standbys) for building nemesis schedules. The control
// services dial as "coord", "dlm" and "log"; clients as "client"; the
// harness's own control connections as "admin" (leave that one alone or
// Transition/KillNode repair paths stall on the harness side).
func (c *Cluster) Hosts() []string {
	var hs []string
	for _, pairs := range c.Shards {
		for _, p := range pairs {
			if !p.Killed() {
				hs = append(hs, p.Node.ID)
			}
		}
	}
	for _, p := range c.Standbys {
		if !p.Killed() {
			hs = append(hs, p.Node.ID)
		}
	}
	return hs
}

func listenAddr(networkName string) string {
	if networkName == "tcp" {
		return "127.0.0.1:0"
	}
	return ""
}

// dataletNetwork resolves the transport datalets listen on.
func (c *Cluster) dataletNetwork() (transport.Network, string, error) {
	if c.Opts.CollocatedDatalets && c.Opts.NetworkName != "inproc" {
		n, err := transport.Lookup("inproc")
		return n, "", err
	}
	return c.Net, listenAddr(c.Opts.NetworkName), nil
}

// startPair boots one datalet and its controlet.
func (c *Cluster) startPair(nodeID, shardID, engine string, dataletCodec wire.Codec, mode topology.Mode) (*Pair, error) {
	var newEngine func(table string) (store.Engine, error)
	var nodeFS *faultfs.FS
	var err error
	if c.Opts.Durable {
		nodeFS = c.fsFor(nodeID)
		newEngine, err = durableEngineFactory(engine, nodeFS)
	} else {
		dir := ""
		if c.Opts.DataDir != "" {
			dir = filepath.Join(c.Opts.DataDir, nodeID+"-"+fmt.Sprint(c.nameSeq.Add(1)))
		}
		newEngine, err = engineFactory(engine, dir)
	}
	if err != nil {
		return nil, err
	}
	if c.Opts.EngineLatency > 0 {
		inner := newEngine
		lat := c.Opts.EngineLatency
		newEngine = func(table string) (store.Engine, error) {
			e, err := inner(table)
			if err != nil {
				return nil, err
			}
			return slowEngine{Engine: e, delay: lat}, nil
		}
	}
	dataletNet, dataletListen, err := c.dataletNetwork()
	if err != nil {
		return nil, err
	}
	d, err := datalet.Serve(datalet.Config{
		Name:              nodeID + "-datalet",
		Network:           c.hostNet(dataletNet, nodeID),
		Addr:              dataletListen,
		Codec:             dataletCodec,
		NewEngine:         newEngine,
		TelemetryInterval: c.Opts.TelemetryInterval,
		MaxInflight:       c.Opts.MaxInflight,
		ShedTarget:        c.Opts.ShedTarget,
		Logf:              c.Opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	ctl, err := controlet.Serve(controlet.Config{
		NodeID:            nodeID,
		ShardID:           shardID,
		Network:           c.hostNet(c.Net, nodeID),
		DataletNetwork:    c.hostNet(dataletNet, nodeID),
		DataAddr:          listenAddr(c.Opts.NetworkName),
		CtlAddr:           listenAddr(c.Opts.NetworkName),
		Codec:             c.Codec,
		DataletAddr:       d.Addr(),
		DataletCodec:      dataletCodec,
		Mode:              mode,
		CoordinatorAddr:   c.coordAddr(),
		DLMAddr:           c.dlmAddr(),
		SharedLogAddr:     c.logAddr(),
		HeartbeatInterval: c.Opts.HeartbeatInterval,
		TelemetryInterval: c.Opts.TelemetryInterval,
		FenceTimeout:      c.fenceTimeout(),
		P2PRouting:        c.Opts.P2PRouting,
		MaxInflight:       c.Opts.MaxInflight,
		ShedTarget:        c.Opts.ShedTarget,
		Logf:              c.Opts.Logf,
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	node := ctl.Node()
	node.DataletCodec = c.Opts.DataletCodecName
	return &Pair{Node: node, Datalet: d, Controlet: ctl, shardID: shardID, engine: engine, fs: nodeFS}, nil
}

// Client opens a coordinator-backed client for this cluster.
func (c *Cluster) Client() (*client.Client, error) {
	return c.ClientConfig(client.Config{})
}

// ClientTuned opens a client with an explicit retry budget and backoff —
// failover experiments use fail-fast clients so one dead shard parks a
// load worker for milliseconds, not the full default budget.
func (c *Cluster) ClientTuned(retries int, backoff time.Duration) (*client.Client, error) {
	return c.ClientConfig(client.Config{Retries: retries, RetryBackoff: backoff})
}

// ClientConfig opens a client with caller-supplied tuning (op timeouts,
// retry budgets); the cluster fills in the transport, codec and
// coordinator address. Under a fault fabric the client dials as host
// "client", so schedules can partition it from specific nodes.
func (c *Cluster) ClientConfig(cfg client.Config) (*client.Client, error) {
	cfg.Network = c.hostNet(c.Net, "client")
	cfg.Codec = c.Codec
	cfg.CoordinatorAddr = c.coordAddr()
	if cfg.Logf == nil {
		cfg.Logf = c.Opts.Logf
	}
	return client.New(cfg)
}

// Admin opens a coordinator client for map inspection and transitions.
func (c *Cluster) Admin() (*coordinator.Client, error) {
	return coordinator.DialCoordinator(c.hostNet(c.Net, "admin"), c.coordAddr())
}

// Pair returns the pair at (shard, replica) as originally deployed.
func (c *Cluster) Pair(shard, replica int) *Pair {
	return c.Shards[shard][replica]
}

// KillNode crashes the pair at (shard, replica); the coordinator's failure
// detector will repair the shard.
func (c *Cluster) KillNode(shard, replica int) {
	c.Shards[shard][replica].Kill()
}

// Crash kill-9s the pair at (shard, replica) with storage semantics: the
// node's filesystem freezes first (so the in-process graceful Close that
// Kill triggers cannot flush anything — exactly what a real SIGKILL
// denies), the processes stop, and the disk image reverts to its durable
// prefix. Requires Options.Durable.
func (c *Cluster) Crash(shard, replica int) error {
	return c.crash(shard, replica, false)
}

// CrashTorn is Crash with a torn final write: a seeded-random prefix of
// each file's unsynced tail survives, as when power fails mid-sector.
func (c *Cluster) CrashTorn(shard, replica int) error {
	return c.crash(shard, replica, true)
}

func (c *Cluster) crash(shard, replica int, torn bool) error {
	p := c.Shards[shard][replica]
	if p.fs == nil {
		return errors.New("cluster: Crash requires Options.Durable")
	}
	p.fs.Freeze()
	p.Kill()
	if torn {
		p.fs.CrashTorn()
	} else {
		p.fs.Crash()
	}
	return nil
}

// Restart boots a fresh pair over the crashed node's durable filesystem
// and rejoins it to its shard. The engine recovers its WAL/checkpoint
// state first; the coordinator then runs the two-phase join, during which
// the node's controlet backfills what it missed — incrementally from its
// recovered watermark when the source can serve a delta, otherwise by a
// full export. The reply reports which happened and how much moved.
func (c *Cluster) Restart(shard, replica int) (coordinator.RejoinReply, error) {
	var reply coordinator.RejoinReply
	old := c.Shards[shard][replica]
	if !old.Killed() {
		return reply, fmt.Errorf("cluster: node %s is still running; Crash it first", old.Node.ID)
	}
	if old.fs == nil {
		return reply, errors.New("cluster: Restart requires Options.Durable")
	}
	dataletCodec, err := wire.LookupCodec(codecNameOf(old.Node, c.Opts))
	if err != nil {
		return reply, err
	}
	pair, err := c.startPair(old.Node.ID, old.shardID, old.engine, dataletCodec, c.Opts.Mode)
	if err != nil {
		return reply, err
	}
	admin, err := c.Admin()
	if err != nil {
		pair.Kill()
		return reply, err
	}
	defer admin.Close()
	cur, err := admin.GetMap()
	if err != nil {
		pair.Kill()
		return reply, err
	}
	pair.Controlet.SetMap(cur)
	reply, err = admin.Rejoin(old.shardID, pair.Node)
	if err != nil {
		pair.Kill()
		return reply, err
	}
	c.oldPairs = append(c.oldPairs, old)
	c.Shards[shard][replica] = pair
	return reply, nil
}

// Transition performs a live topology/consistency switch (§V): it boots a
// full set of new-mode controlets against the same datalets, asks the
// coordinator to run the drain protocol, waits for completion, then
// retires the old controlets. Data never moves.
func (c *Cluster) Transition(to topology.Mode) error {
	if !to.Valid() {
		return fmt.Errorf("cluster: invalid target mode %s", to)
	}
	admin, err := c.Admin()
	if err != nil {
		return err
	}
	defer admin.Close()
	cur, err := admin.GetMap()
	if err != nil {
		return err
	}

	// Boot new-mode controlets bound to the existing datalets.
	newShards := make([]topology.Shard, len(cur.Shards))
	var newPairs [][]*Pair
	gen := c.nameSeq.Add(1)
	for si, shard := range cur.Shards {
		newShards[si] = topology.Shard{ID: shard.ID}
		var pairs []*Pair
		for ri, old := range shard.Replicas {
			nodeID := fmt.Sprintf("%s-g%d-r%d", shard.ID, gen, ri)
			dataletCodec, err := wire.LookupCodec(codecNameOf(old, c.Opts))
			if err != nil {
				return err
			}
			dataletNet, _, err := c.dataletNetwork()
			if err != nil {
				return err
			}
			ctl, err := controlet.Serve(controlet.Config{
				NodeID:            nodeID,
				ShardID:           shard.ID,
				Network:           c.hostNet(c.Net, nodeID),
				DataletNetwork:    c.hostNet(dataletNet, nodeID),
				DataAddr:          listenAddr(c.Opts.NetworkName),
				CtlAddr:           listenAddr(c.Opts.NetworkName),
				Codec:             c.Codec,
				DataletAddr:       old.DataletAddr,
				DataletCodec:      dataletCodec,
				Mode:              to,
				CoordinatorAddr:   c.coordAddr(),
				DLMAddr:           c.dlmAddr(),
				SharedLogAddr:     c.logAddr(),
				HeartbeatInterval: c.Opts.HeartbeatInterval,
				TelemetryInterval: c.Opts.TelemetryInterval,
				FenceTimeout:      c.fenceTimeout(),
				P2PRouting:        c.Opts.P2PRouting,
				MaxInflight:       c.Opts.MaxInflight,
				ShedTarget:        c.Opts.ShedTarget,
				Logf:              c.Opts.Logf,
			})
			if err != nil {
				return err
			}
			node := ctl.Node()
			node.DataletCodec = old.DataletCodec
			newShards[si].Replicas = append(newShards[si].Replicas, node)
			pairs = append(pairs, &Pair{Node: node, Controlet: ctl, Datalet: c.dataletOf(old.DataletAddr)})
		}
		newPairs = append(newPairs, pairs)
	}

	if _, err := admin.BeginTransition(to, newShards); err != nil {
		return err
	}
	// Wait for the coordinator's drain protocol to complete the switch.
	deadline := time.Now().Add(30 * time.Second)
	for {
		m, err := admin.GetMap()
		if err != nil {
			return err
		}
		if m.Transition == nil && m.Mode == to {
			break
		}
		if time.Now().After(deadline) {
			return errors.New("cluster: transition did not complete")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Retire the old controlets; datalets stay.
	for _, pairs := range c.Shards {
		for _, p := range pairs {
			c.oldPairs = append(c.oldPairs, p)
			if !p.Killed() {
				_ = p.Controlet.Close()
			}
		}
	}
	c.Shards = newPairs
	c.Opts.Mode = to
	return nil
}

// JoinNode boots a fresh shard (replicas controlet–datalet pairs) and asks
// the coordinator to migrate its ring share in online. It blocks until the
// migration completes and the expanded map is installed.
func (c *Cluster) JoinNode(replicas int) error {
	if replicas <= 0 {
		replicas = c.Opts.Replicas
	}
	admin, err := c.Admin()
	if err != nil {
		return err
	}
	defer admin.Close()
	cur, err := admin.GetMap()
	if err != nil {
		return err
	}
	dataletCodec, err := wire.LookupCodec(c.Opts.DataletCodecName)
	if err != nil {
		return err
	}
	gen := c.nameSeq.Add(1)
	shard := topology.Shard{ID: fmt.Sprintf("shard-j%d", gen)}
	var pairs []*Pair
	for ri := 0; ri < replicas; ri++ {
		nodeID := fmt.Sprintf("%s-r%d", shard.ID, ri)
		pair, err := c.startPair(nodeID, shard.ID, c.Opts.Engine, dataletCodec, c.Opts.Mode)
		if err != nil {
			return err
		}
		// The joining controlets need the current map before any migrated
		// traffic arrives; the expanded map reaches them via push later.
		pair.Controlet.SetMap(cur)
		pairs = append(pairs, pair)
		shard.Replicas = append(shard.Replicas, pair.Node)
	}
	start, err := admin.JoinNode(shard)
	if err != nil {
		for _, p := range pairs {
			p.Kill()
		}
		return err
	}
	if err := c.awaitMigration(admin, start.ID, cur.Epoch); err != nil {
		return err
	}
	c.Shards = append(c.Shards, pairs)
	return nil
}

// DrainNode migrates the keyspace of the shard at index si onto the other
// shards and removes it from the map, then retires its pairs. Blocks until
// the migration completes.
func (c *Cluster) DrainNode(si int) error {
	admin, err := c.Admin()
	if err != nil {
		return err
	}
	defer admin.Close()
	cur, err := admin.GetMap()
	if err != nil {
		return err
	}
	if si < 0 || si >= len(cur.Shards) || si >= len(c.Shards) {
		return fmt.Errorf("cluster: no shard at index %d", si)
	}
	start, err := admin.DrainNode(cur.Shards[si].ID)
	if err != nil {
		return err
	}
	if err := c.awaitMigration(admin, start.ID, cur.Epoch); err != nil {
		return err
	}
	for _, p := range c.Shards[si] {
		c.oldPairs = append(c.oldPairs, p)
		if !p.Killed() {
			_ = p.Controlet.Close()
			_ = p.Datalet.Close()
		}
	}
	c.Shards = append(c.Shards[:si:si], c.Shards[si+1:]...)
	return nil
}

// awaitMigration polls the coordinator until run id finishes and the
// post-migration map (epoch > baseEpoch) is installed.
func (c *Cluster) awaitMigration(admin *coordinator.Client, id string, baseEpoch uint64) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := admin.MigrationStatus()
		if err != nil {
			return err
		}
		if st.Run != nil && st.Run.ID == id && !st.Active {
			if st.Run.Err != "" {
				return fmt.Errorf("cluster: migration %s failed: %s", id, st.Run.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			return errors.New("cluster: migration did not complete")
		}
		time.Sleep(5 * time.Millisecond)
	}
	m, err := admin.GetMap()
	if err != nil {
		return err
	}
	if m.Epoch <= baseEpoch {
		return fmt.Errorf("cluster: migration %s finished without an epoch bump", id)
	}
	return nil
}

// codecNameOf returns the datalet codec name for a node.
func codecNameOf(n topology.Node, opts Options) string {
	if n.DataletCodec != "" {
		return n.DataletCodec
	}
	return opts.DataletCodecName
}

// dataletOf finds the datalet server behind an address (nil for killed or
// unknown addresses).
func (c *Cluster) dataletOf(addr string) *datalet.Server {
	for _, pairs := range c.Shards {
		for _, p := range pairs {
			if p.Datalet != nil && p.Datalet.Addr() == addr {
				return p.Datalet
			}
		}
	}
	return nil
}

// Reconcile runs the anti-entropy push from the pair at (shard, replica):
// its datalet's state is pushed (LWW-versioned) to every peer replica.
// Returns (pairs pushed, pairs accepted by all peers).
func (c *Cluster) Reconcile(shard, replica int) (int, int, error) {
	p := c.Shards[shard][replica]
	ctl, err := rpc.DialClient(c.hostNet(c.Net, "admin"), p.Controlet.CtlAddr())
	if err != nil {
		return 0, 0, err
	}
	defer ctl.Close()
	var reply controlet.ReconcileReply
	if err := ctl.Call("Reconcile", struct{}{}, &reply); err != nil {
		return 0, 0, err
	}
	return reply.Pairs, reply.Accepted, nil
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	for _, pairs := range c.Shards {
		for _, p := range pairs {
			if p != nil && !p.Killed() {
				if p.Controlet != nil {
					_ = p.Controlet.Close()
				}
				if p.Datalet != nil {
					_ = p.Datalet.Close()
				}
			}
		}
	}
	for _, p := range c.Standbys {
		if !p.Killed() {
			_ = p.Controlet.Close()
			_ = p.Datalet.Close()
		}
	}
	for _, p := range c.oldPairs {
		_ = p // controlets already closed in Transition; datalets shared
	}
	for _, s := range c.Logs {
		_ = s.Close()
	}
	for _, s := range c.DLMs {
		_ = s.Close()
	}
	for _, s := range c.Coords {
		_ = s.Close()
	}
	if c.Log != nil {
		_ = c.Log.Close()
	}
	if c.DLM != nil {
		_ = c.DLM.Close()
	}
	if c.Coord != nil {
		_ = c.Coord.Close()
	}
}
