package cluster

// Nemesis tests: every deployment mode runs under seeded, deterministic
// fault schedules (internal/faultnet) while a recorded workload hammers the
// cluster; afterwards the per-key linearizability checker or the EC
// convergence checker (internal/histcheck) judges the history. A failing
// run logs its seed; rerun with BESPOKV_NEMESIS_SEED=<seed> to replay the
// identical schedule (and, for generated schedules, the identical
// link-level coin flips inside the fabric).

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/client"
	"bespokv/internal/faultnet"
	"bespokv/internal/histcheck"
	"bespokv/internal/store"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
)

// nemesisSeed resolves the run's seed: BESPOKV_NEMESIS_SEED pins it for
// reproduction, otherwise the wall clock draws a fresh one.
func nemesisSeed(t *testing.T) int64 {
	t.Helper()
	if env := os.Getenv("BESPOKV_NEMESIS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad BESPOKV_NEMESIS_SEED %q: %v", env, err)
		}
		return v
	}
	seed := time.Now().UnixNano()
	return seed
}

// logSeed prints the reproduction line. t.Logf output is shown for failing
// runs (and under -v), so a failure always carries its seed.
func logSeed(t *testing.T, seed int64) {
	t.Helper()
	t.Logf("nemesis seed %d — reproduce with: BESPOKV_NEMESIS_SEED=%d go test -run '^%s$' ./internal/cluster/", seed, seed, t.Name())
}

// startFaultCluster deploys a cluster whose every connection crosses a
// fault fabric seeded with seed, wrapping the inproc transport.
func startFaultCluster(t *testing.T, seed int64, opts Options) (*Cluster, *faultnet.Fabric) {
	t.Helper()
	inner, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	f := faultnet.New(inner, seed)
	opts.Fabric = f
	c := startCluster(t, opts)
	// Registered after startCluster's Close cleanup, so it runs first:
	// teardown proceeds over a healed network.
	t.Cleanup(func() { f.Heal(); f.ClearLinks() })
	return c, f
}

// nemesisClient opens a recorded-workload client: one attempt per op (a
// retried write would execute twice and corrupt the recorded history), a
// watchdog to turn blackholed connections into prompt errors.
func nemesisClient(t *testing.T, c *Cluster) *client.Client {
	t.Helper()
	cli, err := c.ClientConfig(client.Config{
		Retries:   1,
		OpTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// engineDump snapshots a pair's default-table contents as key→value.
func engineDump(p *Pair) map[string]string {
	m := map[string]string{}
	if p == nil || p.Datalet == nil {
		return m
	}
	e := p.Datalet.Engine("")
	if e == nil {
		return m
	}
	_ = e.Snapshot(func(kv store.KV) error {
		m[string(kv.Key)] = string(kv.Value)
		return nil
	})
	return m
}

// pairByID finds a live pair (shard member or standby) by node ID.
func pairByID(c *Cluster, id string) *Pair {
	for _, pairs := range c.Shards {
		for _, p := range pairs {
			if p.Node.ID == id && !p.Killed() {
				return p
			}
		}
	}
	for _, p := range c.Standbys {
		if p.Node.ID == id && !p.Killed() {
			return p
		}
	}
	return nil
}

// convergenceProblems dumps every in-map replica of every shard and runs
// the EC convergence checker against the recorded ops. Membership comes
// from the coordinator's current map, not the deployment lists: nodes the
// failure detector evicted stop receiving propagations and legitimately
// diverge.
func convergenceProblems(t *testing.T, c *Cluster, ops []histcheck.Op) []string {
	t.Helper()
	admin, err := c.Admin()
	if err != nil {
		return []string{fmt.Sprintf("admin: %v", err)}
	}
	defer admin.Close()
	m, err := admin.GetMap()
	if err != nil {
		return []string{fmt.Sprintf("getmap: %v", err)}
	}
	var problems []string
	for _, shard := range m.Shards {
		replicas := map[string]map[string]string{}
		for _, n := range shard.Replicas {
			if p := pairByID(c, n.ID); p != nil {
				replicas[n.ID] = engineDump(p)
			}
		}
		for _, msg := range histcheck.CheckConvergence(replicas, ops) {
			problems = append(problems, fmt.Sprintf("shard %s: %s", shard.ID, msg))
		}
	}
	return problems
}

// verifyConverged waits for every shard's replicas to agree (with only
// written values present), nudging stuck propagation with anti-entropy
// rounds. Eventual consistency promises convergence, not durability of
// every ack — a failed-over EC master may take acked-unpropagated writes
// to its grave — so agreement + provenance is the contract checked.
func verifyConverged(t *testing.T, c *Cluster, rec *histcheck.Recorder, seed int64) {
	t.Helper()
	ops := rec.Ops()
	deadline := time.Now().Add(15 * time.Second)
	for {
		problems := convergenceProblems(t, c, ops)
		if len(problems) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: replicas did not converge: %v", seed, problems)
		}
		for si := range c.Shards {
			for ri, p := range c.Shards[si] {
				if !p.Killed() {
					_, _, _ = c.Reconcile(si, ri)
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// verifyAckedReadable re-reads every acknowledged write — the strong
// consistency contract: no failover or partition sequence may lose an
// acked write.
func verifyAckedReadable(t *testing.T, c *Cluster, rec *histcheck.Recorder, seed int64) {
	t.Helper()
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	lost := 0
	for k, values := range rec.AckedWrites() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			v, ok, err := cli.Get("", []byte(k))
			if err == nil && ok && values[string(v)] {
				break
			}
			if time.Now().After(deadline) {
				lost++
				t.Errorf("seed %d: acked write %s lost (ok=%v v=%q err=%v)", seed, k, ok, v, err)
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if lost >= 10 {
			t.Fatalf("seed %d: giving up after %d lost acked writes", seed, lost)
		}
	}
}

// chaosCase parameterizes the shared chaos driver.
type chaosCase struct {
	mode  topology.Mode
	kills bool // crash replicas mid-run (standbys provisioned)
	kinds []faultnet.Kind
}

// runNemesisChaos is the shared chaos driver: a unique-key write workload
// runs while a generated nemesis schedule (and, for kills cases, seeded
// crashes) batters the cluster; after heal, strong modes must serve every
// acked write and eventual modes must converge to written values.
func runNemesisChaos(t *testing.T, cc chaosCase) {
	t.Helper()
	if testing.Short() {
		t.Skip("nemesis chaos test in -short mode")
	}
	seed := nemesisSeed(t)
	logSeed(t, seed)
	opts := Options{
		Mode:             cc.mode,
		Shards:           2,
		Replicas:         3,
		HeartbeatTimeout: 400 * time.Millisecond,
	}
	if cc.kills {
		opts.Standbys = 2
	}
	c, f := startFaultCluster(t, seed, opts)

	sched := faultnet.Generate(seed, c.Hosts(), faultnet.GenOptions{
		Rounds: 3,
		Dwell:  500 * time.Millisecond,
		Pause:  400 * time.Millisecond,
		Kinds:  cc.kinds,
	})
	t.Logf("%s", sched)

	rec := histcheck.NewRecorder()
	var seq, ackedN, failedN atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		cli := nemesisClient(t, c)
		wg.Add(1)
		go func(w int, cli *client.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := seq.Add(1)
				k := fmt.Sprintf("nemesis-%06d", i)
				ref := rec.BeginWrite(w, k, k)
				err := cli.Put("", []byte(k), []byte(k))
				rec.EndWrite(ref, err)
				if err != nil {
					failedN.Add(1)
				} else {
					ackedN.Add(1)
				}
			}
		}(w, cli)
	}

	// Crashes ride alongside the network schedule, drawn from the same
	// seed so a replay kills the same replicas at the same offsets.
	if cc.kills {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			select {
			case <-stop:
				return
			case <-time.After(400 * time.Millisecond):
			}
			c.KillNode(0, rng.Intn(3))
			select {
			case <-stop:
				return
			case <-time.After(1200 * time.Millisecond):
			}
			c.KillNode(1, rng.Intn(3))
		}()
	}

	sched.Run(f, stop, t.Logf)
	// Post-heal settle with the workload still running: failovers finish,
	// queued frames drain, fenced nodes rejoin or stay evicted.
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	t.Logf("chaos run: %d acked, %d failed transiently", ackedN.Load(), failedN.Load())
	if ackedN.Load() == 0 {
		t.Fatalf("seed %d: no writes succeeded during the chaos run", seed)
	}

	if cc.mode.Consistency == topology.Strong {
		verifyAckedReadable(t, c, rec, seed)
	} else {
		verifyConverged(t, c, rec, seed)
	}
}

// TestNemesisChaosMSSC ports the original chaos-kill test onto the seeded
// nemesis plane: crashes plus lossy/one-way links under MS+SC, then the
// acked-write durability check.
func TestNemesisChaosMSSC(t *testing.T) {
	runNemesisChaos(t, chaosCase{
		mode:  topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		kills: true,
		kinds: []faultnet.Kind{faultnet.KindOneWay, faultnet.KindFlaky, faultnet.KindSlow},
	})
}

// TestNemesisChaosAASC is the AA chaos variant: crashes plus lossy links
// with per-key DLM locking in the write path.
func TestNemesisChaosAASC(t *testing.T) {
	runNemesisChaos(t, chaosCase{
		mode:  topology.Mode{Topology: topology.AA, Consistency: topology.Strong},
		kills: true,
		kinds: []faultnet.Kind{faultnet.KindOneWay, faultnet.KindFlaky, faultnet.KindSlow},
	})
}

// TestNemesisChaosMSEC runs MS+EC under isolations and lossy links; the
// check is the EC contract: replicas converge and hold only written values.
func TestNemesisChaosMSEC(t *testing.T) {
	runNemesisChaos(t, chaosCase{
		mode:  topology.Mode{Topology: topology.MS, Consistency: topology.Eventual},
		kinds: []faultnet.Kind{faultnet.KindIsolate, faultnet.KindFlaky, faultnet.KindSlow},
	})
}

// TestNemesisChaosAAEC runs AA+EC (shared-log sequencing) under the same
// fault families as MSEC.
func TestNemesisChaosAAEC(t *testing.T) {
	runNemesisChaos(t, chaosCase{
		mode:  topology.Mode{Topology: topology.AA, Consistency: topology.Eventual},
		kinds: []faultnet.Kind{faultnet.KindIsolate, faultnet.KindFlaky, faultnet.KindSlow},
	})
}

// TestNemesisLinearizableMSSC records a concurrent read/write history (6
// clients, 8 keys, globally unique write values) against MS+SC while a
// partition/heal schedule runs, then requires the checker to verify every
// key linearizable — and to reject the same history once deliberately
// corrupted with a phantom read.
func TestNemesisLinearizableMSSC(t *testing.T) {
	if testing.Short() {
		t.Skip("nemesis linearizability test in -short mode")
	}
	seed := nemesisSeed(t)
	logSeed(t, seed)
	c, f := startFaultCluster(t, seed, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:           1,
		Replicas:         3,
		Standbys:         1,
		HeartbeatTimeout: 400 * time.Millisecond,
	})
	sched := faultnet.Generate(seed, c.Hosts(), faultnet.GenOptions{
		Rounds: 3,
		Dwell:  500 * time.Millisecond,
		Pause:  400 * time.Millisecond,
		Kinds:  []faultnet.Kind{faultnet.KindIsolate, faultnet.KindSplit, faultnet.KindOneWay},
	})
	t.Logf("%s", sched)

	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	rec := histcheck.NewRecorder()
	var vals atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		cli := nemesisClient(t, c)
		wg.Add(1)
		go func(w int, cli *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[rng.Intn(len(keys))]
				if rng.Intn(2) == 0 {
					v := fmt.Sprint(vals.Add(1))
					ref := rec.BeginWrite(w, k, v)
					err := cli.Put("", []byte(k), []byte(v))
					rec.EndWrite(ref, err)
				} else {
					ref := rec.BeginRead(w, k)
					v, ok, err := cli.Get("", []byte(k))
					rec.EndRead(ref, string(v), ok, err)
				}
				// Pace the history: the checker's cost grows with ops per
				// key, and the interesting interleavings come from the
				// schedule, not from raw op volume.
				time.Sleep(3 * time.Millisecond)
			}
		}(w, cli)
	}

	sched.Run(f, stop, t.Logf)
	time.Sleep(400 * time.Millisecond) // settle: failovers complete post-heal
	close(stop)
	wg.Wait()

	ops := rec.Ops()
	opt := histcheck.Options{MaxStates: 5_000_000}
	rep := histcheck.Check(ops, opt)
	t.Logf("history: %d ops recorded; %s", len(ops), rep)
	if !rep.Ok() {
		t.Fatalf("seed %d: history not linearizable: %s", seed, rep)
	}
	if rep.TotalOps() < 500 {
		t.Fatalf("seed %d: only %d ops checked, want >= 500 (workload too slow?)", seed, rep.TotalOps())
	}

	// Corruption canary: the same history plus one read of a value nobody
	// ever wrote must be rejected — guards against a checker that
	// vacuously accepts.
	last := ops[len(ops)-1]
	bad := append(append([]histcheck.Op(nil), ops...), histcheck.Op{
		Client: 99,
		Kind:   histcheck.OpRead,
		Key:    keys[0],
		Value:  "never-written",
		Found:  true,
		Start:  last.Start + 1,
		End:    last.Start + 2,
		OK:     true,
	})
	if histcheck.Check(bad, opt).Ok() {
		t.Fatalf("seed %d: checker accepted a deliberately corrupted history", seed)
	}
}

// TestNemesisFencedHeadIsolation cuts only the head↔coordinator links —
// the data path stays up, so without self-fencing the deposed head would
// keep acking writes from stale-map clients while the coordinator promotes
// a replacement chain. The recorded history must stay linearizable and the
// coordinator must actually evict the head.
func TestNemesisFencedHeadIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("nemesis fencing test in -short mode")
	}
	seed := nemesisSeed(t)
	logSeed(t, seed)
	c, f := startFaultCluster(t, seed, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:           1,
		Replicas:         3,
		Standbys:         1,
		HeartbeatTimeout: 400 * time.Millisecond,
	})
	head := c.Shards[0][0].Node.ID
	sched := faultnet.Schedule{Seed: seed, Steps: []faultnet.Step{
		{At: 300 * time.Millisecond, Desc: "cut " + head + "<->coord", Apply: func(f *faultnet.Fabric) {
			f.Partition([]string{head}, []string{"coord"})
		}},
		{At: 2200 * time.Millisecond, Desc: "heal", Apply: func(f *faultnet.Fabric) { f.Heal() }},
	}}

	keys := []string{"f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"}
	rec := histcheck.NewRecorder()
	var vals atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		cli := nemesisClient(t, c)
		wg.Add(1)
		go func(w int, cli *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[rng.Intn(len(keys))]
				if rng.Intn(2) == 0 {
					v := fmt.Sprint(vals.Add(1))
					ref := rec.BeginWrite(w, k, v)
					err := cli.Put("", []byte(k), []byte(v))
					rec.EndWrite(ref, err)
				} else {
					ref := rec.BeginRead(w, k)
					v, ok, err := cli.Get("", []byte(k))
					rec.EndRead(ref, string(v), ok, err)
				}
				// Low per-key density: the long fenced window makes
				// uncertain (open-window) writes, and the search cost grows
				// steeply in ops-per-key × pending writes.
				time.Sleep(6 * time.Millisecond)
			}
		}(w, cli)
	}

	sched.Run(f, stop, t.Logf)
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The coordinator must have deposed the isolated head.
	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	m, err := admin.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Shards[0].Replicas {
		if n.ID == head {
			t.Fatalf("seed %d: isolated head %s still in the map (epoch %d)", seed, head, m.Epoch)
		}
	}

	// NonLinearizable is a protocol bug; Unknown only means the state
	// budget ran out on a key (long fenced windows leave many open-ended
	// writes), so it warns instead of failing — the strict "must verify
	// linearizable" gate lives in TestNemesisLinearizableMSSC.
	rep := histcheck.Check(rec.Ops(), histcheck.Options{MaxStates: 2_000_000})
	t.Logf("history: %s", rep)
	for _, kr := range rep.Keys {
		switch kr.Outcome {
		case histcheck.NonLinearizable:
			t.Fatalf("seed %d: failover under head isolation broke linearizability: %s", seed, rep)
		case histcheck.Unknown:
			t.Logf("seed %d: key %q verdict unknown (%d ops, budget exhausted)", seed, kr.Key, kr.Ops)
		}
	}
}

// TestNemesisTransitionUnderSlowLinks runs a live MS+SC → AA+SC mode
// switch while every link carries added delay and jitter: the drain
// protocol's cutover must still complete, and every write acked in either
// mode must be readable afterwards.
func TestNemesisTransitionUnderSlowLinks(t *testing.T) {
	if testing.Short() {
		t.Skip("nemesis transition test in -short mode")
	}
	seed := nemesisSeed(t)
	logSeed(t, seed)
	c, f := startFaultCluster(t, seed, Options{
		Mode:     topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:   2,
		Replicas: 3,
	})
	f.SetLink("*", "*", faultnet.Rule{Delay: time.Millisecond, Jitter: 2 * time.Millisecond})

	rec := histcheck.NewRecorder()
	var seq atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		cli := nemesisClient(t, c)
		wg.Add(1)
		go func(w int, cli *client.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("cut-%06d", seq.Add(1))
				ref := rec.BeginWrite(w, k, k)
				rec.EndWrite(ref, cli.Put("", []byte(k), []byte(k)))
			}
		}(w, cli)
	}

	time.Sleep(200 * time.Millisecond)
	if err := c.Transition(topology.Mode{Topology: topology.AA, Consistency: topology.Strong}); err != nil {
		t.Fatalf("seed %d: transition under slow links: %v", seed, err)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	f.ClearLinks()

	verifyAckedReadable(t, c, rec, seed)
}
