package cluster

import (
	"fmt"
	"testing"
	"time"

	"bespokv/internal/topology"
)

// TestFailoverTailKillMSSC kills the chain tail under MS+SC: the
// coordinator repairs the chain, acked writes survive, and the store keeps
// serving (Fig. 16, top).
func TestFailoverTailKillMSSC(t *testing.T) {
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:           1,
		Replicas:         3,
		HeartbeatTimeout: 400 * time.Millisecond,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 100
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}
	c.KillNode(0, 2) // tail

	// Wait until the coordinator repaired the shard.
	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	eventually(t, 10*time.Second, func() string {
		m, err := admin.GetMap()
		if err != nil {
			return err.Error()
		}
		if len(m.Shards[0].Replicas) != 2 {
			return fmt.Sprintf("shard still has %d replicas", len(m.Shards[0].Replicas))
		}
		return ""
	})

	// Every acked write is still readable (strong reads from the new
	// tail), and new writes work.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		eventually(t, 5*time.Second, func() string {
			v, ok, err := cli.Get("", k)
			if err != nil || !ok || string(v) != string(k) {
				return fmt.Sprintf("lost acked write %s: (%q,%v,%v)", k, v, ok, err)
			}
			return ""
		})
	}
	eventually(t, 5*time.Second, func() string {
		if err := cli.Put("", []byte("after-failover"), []byte("ok")); err != nil {
			return err.Error()
		}
		return ""
	})
}

// TestFailoverHeadKillMSSC kills the chain head: the second node is
// promoted and writes resume at the new head.
func TestFailoverHeadKillMSSC(t *testing.T) {
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:           1,
		Replicas:         3,
		HeartbeatTimeout: 400 * time.Millisecond,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put("", []byte("pre"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	c.KillNode(0, 0) // head
	eventually(t, 10*time.Second, func() string {
		if err := cli.Put("", []byte("post"), []byte("2")); err != nil {
			return "write after head kill: " + err.Error()
		}
		return ""
	})
	v, ok, err := cli.Get("", []byte("pre"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("pre-failure write lost: (%q,%v,%v)", v, ok, err)
	}
}

// TestFailoverMasterKillMSEC kills the MS+EC master; a slave is promoted
// via replica order and the store keeps serving.
func TestFailoverMasterKillMSEC(t *testing.T) {
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Eventual},
		Shards:           1,
		Replicas:         3,
		HeartbeatTimeout: 400 * time.Millisecond,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Let propagation reach the slaves before the master dies, so acked
	// writes survive (EC allows losing unpropagated ones; see §C-A).
	waitConverged(t, c, 0, 50)
	c.KillNode(0, 0)
	eventually(t, 10*time.Second, func() string {
		if err := cli.Put("", []byte("post"), []byte("2")); err != nil {
			return "write after master kill: " + err.Error()
		}
		return ""
	})
	eventually(t, 5*time.Second, func() string {
		v, ok, err := cli.Get("", []byte("key-049"))
		if err != nil || !ok {
			return fmt.Sprintf("replicated write lost: (%q,%v,%v)", v, ok, err)
		}
		return ""
	})
}

// TestFailoverStandbyRecovery kills a replica with a standby registered:
// the standby must pull the shard's data and join as the new tail.
func TestFailoverStandbyRecovery(t *testing.T) {
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:           1,
		Replicas:         3,
		Standbys:         1,
		HeartbeatTimeout: 400 * time.Millisecond,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 200
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}
	c.KillNode(0, 1) // mid node
	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	eventually(t, 15*time.Second, func() string {
		m, err := admin.GetMap()
		if err != nil {
			return err.Error()
		}
		reps := m.Shards[0].Replicas
		if len(reps) != 3 {
			return fmt.Sprintf("shard has %d replicas, want standby joined", len(reps))
		}
		if reps[2].ID != "standby-0" {
			return fmt.Sprintf("tail is %s, want standby-0", reps[2].ID)
		}
		return ""
	})
	// The standby's datalet holds the recovered data.
	sb := c.Standbys[0]
	eventually(t, 10*time.Second, func() string {
		if got := sb.Datalet.Engine("").Len(); got != n {
			return fmt.Sprintf("standby recovered %d/%d keys", got, n)
		}
		return ""
	})
	// Strong reads now come from the standby tail.
	v, ok, err := cli.Get("", []byte("key-0000"))
	if err != nil || !ok || string(v) != "key-0000" {
		t.Fatalf("read after standby join: (%q,%v,%v)", v, ok, err)
	}
}

// TestAAKillBarelyDips kills one active replica under AA+EC: the other
// actives keep serving reads and writes throughout (Fig. 16, bottom).
func TestAAKillBarelyDips(t *testing.T) {
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.AA, Consistency: topology.Eventual},
		Shards:           1,
		Replicas:         3,
		HeartbeatTimeout: 400 * time.Millisecond,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put("", []byte("pre"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	c.KillNode(0, 1)
	// Writes keep working with at most client-level retries.
	ok := 0
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("during-%03d", i))
		if err := cli.Put("", k, k); err == nil {
			ok++
		}
	}
	if ok < 45 {
		t.Fatalf("only %d/50 writes succeeded during AA failover", ok)
	}
}
