package cluster

import (
	"fmt"
	"strings"
	"testing"

	"bespokv/internal/topology"
)

// TestClusterOverTCP deploys a full cluster over loopback sockets — the
// multi-process-shaped path the cmd/ binaries use.
func TestClusterOverTCP(t *testing.T) {
	c := startCluster(t, Options{
		NetworkName:     "tcp",
		Shards:          2,
		Replicas:        3,
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("tcp-key-%03d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
		v, ok, err := cli.Get("", k)
		if err != nil || !ok || string(v) != string(k) {
			t.Fatalf("get over tcp: (%q,%v,%v)", v, ok, err)
		}
	}
	// Every endpoint is a real socket address.
	for _, pairs := range c.Shards {
		for _, p := range pairs {
			if !strings.Contains(p.Node.ControletAddr, ":") || !strings.Contains(p.Node.DataletAddr, ":") {
				t.Fatalf("non-tcp address in tcp cluster: %+v", p.Node)
			}
		}
	}
}

// TestClusterCollocatedDatalets verifies the paper-faithful layout: over
// tcp with CollocatedDatalets, controlets listen on sockets while each
// datalet stays on the in-process transport (same-machine pair).
func TestClusterCollocatedDatalets(t *testing.T) {
	c := startCluster(t, Options{
		NetworkName:        "tcp",
		CollocatedDatalets: true,
		Shards:             1,
		Replicas:           3,
		Mode:               topology.Mode{Topology: topology.MS, Consistency: topology.Eventual},
		DisableFailover:    true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put("", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, 0, 1)
	for _, p := range c.Shards[0] {
		if !strings.Contains(p.Node.ControletAddr, ":") {
			t.Fatalf("controlet not on tcp: %+v", p.Node)
		}
		if strings.Contains(p.Node.DataletAddr, ":") {
			t.Fatalf("datalet not collocated (inproc): %+v", p.Node)
		}
	}
}
