package cluster

// Control-plane nemesis suite (`make rsm`): the acceptance proof for the
// replicated control plane. A 3-member coordinator/DLM/sequencer control
// plane is killed and partitioned at its current leader while an MS+SC
// workload runs; the checks are the tentpole's contract — zero acked-write
// loss, a linearizable history, and re-election plus resumed control-plane
// progress within a bounded number of election timeouts.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/client"
	"bespokv/internal/coordinator"
	"bespokv/internal/histcheck"
	"bespokv/internal/topology"
)

// ctlElectionTimeout is the control groups' election timeout in this
// suite; re-election bounds below are multiples of it.
const ctlElectionTimeout = 150 * time.Millisecond

// electionBound is the re-election budget: generous for CI noise, still a
// small constant number of election timeouts (typical observed is 2-3).
const electionBound = 20 * ctlElectionTimeout

func replicatedOpts() Options {
	return Options{
		Mode:                   topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:                 2,
		Replicas:               3,
		ReplicatedControl:      3,
		ControlElectionTimeout: ctlElectionTimeout,
		HeartbeatTimeout:       800 * time.Millisecond,
	}
}

// progressBound bounds how long a control mutation may take to commit
// again after a failover. Re-election itself is fast (electionBound); the
// extra headroom is for the probing client, which may burn a call timeout
// or two discovering that its connection or a stale leader hint points
// into the fault before rotating to the new leader.
const progressBound = 15 * time.Second

// probeAdmin opens the control-plane liveness probe's client: short call
// timeout so a blackholed member costs one second, not ten.
func probeAdmin(t *testing.T, c *Cluster) *coordinator.Client {
	t.Helper()
	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	admin.SetCallTimeout(time.Second)
	t.Cleanup(func() { admin.Close() })
	return admin
}

// waitControlProgress asserts resumed control-plane progress: a mutation
// (standby registration with a throwaway node) commits through the current
// leader within progressBound. Data-node kills never happen in this suite,
// so the junk standbys are never claimed.
func waitControlProgress(t *testing.T, admin *coordinator.Client, seed int64, tag string) {
	t.Helper()
	started := time.Now()
	deadline := started.Add(progressBound)
	var err error
	for i := 0; ; i++ {
		id := fmt.Sprintf("probe-%s-%d", tag, i)
		err = admin.RegisterStandby(topology.Node{
			ID: id, ControletAddr: id + "-c", DataletAddr: id + "-d",
		})
		if err == nil {
			t.Logf("control plane resumed progress after %v", time.Since(started))
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: control plane made no progress within %v: %v", seed, progressBound, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestControlPlaneLeaderKill kills the coordinator leader (the process,
// not a link) under continuous MS+SC load: survivors must re-elect within
// electionBound, control mutations must resume, and no acked write may be
// lost.
func TestControlPlaneLeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("control-plane nemesis test in -short mode")
	}
	seed := nemesisSeed(t)
	logSeed(t, seed)
	c, _ := startFaultCluster(t, seed, replicatedOpts())

	rec := histcheck.NewRecorder()
	var seq, acked atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		cli := nemesisClient(t, c)
		wg.Add(1)
		go func(w int, cli *client.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("ctlkill-%06d", seq.Add(1))
				ref := rec.BeginWrite(w, k, k)
				err := cli.Put("", []byte(k), []byte(k))
				rec.EndWrite(ref, err)
				if err == nil {
					acked.Add(1)
				}
			}
		}(w, cli)
	}

	time.Sleep(300 * time.Millisecond)
	dead, err := c.KillCoordLeader()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	killedAt := time.Now()
	t.Logf("killed coordinator leader %s", dead)

	// Bounded unavailability: a survivor leads within electionBound.
	next, err := c.WaitCoordLeader(electionBound)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if next == dead {
		t.Fatalf("seed %d: dead member %s still leads", seed, dead)
	}
	t.Logf("re-elected %s after %v (bound %v)", next, time.Since(killedAt), electionBound)

	// Resumed control-plane progress: a replicated mutation commits.
	waitControlProgress(t, probeAdmin(t, c), seed, "kill")

	// Data plane kept making progress throughout; let it run a beat past
	// the failover, then check the strong contract.
	ackedAtFailover := acked.Load()
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if acked.Load() == ackedAtFailover {
		t.Fatalf("seed %d: no writes acked after the coordinator leader kill", seed)
	}
	t.Logf("%d writes acked (%d after failover)", acked.Load(), acked.Load()-ackedAtFailover)
	verifyAckedReadable(t, c, rec, seed)
}

// TestControlPlaneLeaderPartition isolates the coordinator leader on the
// network (its process stays up) under a concurrent read/write MS+SC
// history: the majority side must elect a replacement, the deposed leader
// must step down rather than split-brain the map, and after heal the
// recorded history must be linearizable.
func TestControlPlaneLeaderPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("control-plane nemesis test in -short mode")
	}
	seed := nemesisSeed(t)
	logSeed(t, seed)
	c, f := startFaultCluster(t, seed, replicatedOpts())

	lead, err := c.WaitCoordLeader(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	keys := []string{"cp0", "cp1", "cp2", "cp3", "cp4", "cp5", "cp6", "cp7"}
	rec := histcheck.NewRecorder()
	var vals atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		cli := nemesisClient(t, c)
		wg.Add(1)
		go func(w int, cli *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[rng.Intn(len(keys))]
				if rng.Intn(2) == 0 {
					v := fmt.Sprint(vals.Add(1))
					ref := rec.BeginWrite(w, k, v)
					rec.EndWrite(ref, cli.Put("", []byte(k), []byte(v)))
				} else {
					ref := rec.BeginRead(w, k)
					v, ok, err := cli.Get("", []byte(k))
					rec.EndRead(ref, string(v), ok, err)
				}
				time.Sleep(3 * time.Millisecond)
			}
		}(w, cli)
	}

	time.Sleep(300 * time.Millisecond)
	t.Logf("isolating coordinator leader %s", lead)
	f.Isolate(lead)
	isolatedAt := time.Now()

	// The majority elects a replacement within the bound. The deposed
	// minority leader may briefly still think it leads (check-quorum
	// deposes it within ~2 election timeouts); that is harmless — it has
	// no quorum, so nothing it accepts can commit.
	var next string
	deadline := time.Now().Add(electionBound)
	for {
		if id, s := c.CoordLeader(); s != nil && id != lead {
			next = id
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: no majority-side leader within %v of isolating %s", seed, electionBound, lead)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("majority re-elected %s after %v", next, time.Since(isolatedAt))

	// Progress on the majority side while the old leader is still cut off.
	waitControlProgress(t, probeAdmin(t, c), seed, "part")

	// Check-quorum: the isolated ex-leader must step down, not linger as a
	// second "leader" (it could otherwise serve stale leader-only reads).
	var old *coordinator.Server
	for i, id := range c.coordIDs {
		if id == lead {
			old = c.Coords[i]
		}
	}
	deadline = time.Now().Add(electionBound)
	for {
		if !old.IsLeader() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: isolated leader %s never stepped down", seed, lead)
		}
		time.Sleep(10 * time.Millisecond)
	}

	f.Heal()
	time.Sleep(400 * time.Millisecond) // settle: healed member rejoins as follower
	close(stop)
	wg.Wait()

	ops := rec.Ops()
	rep := histcheck.Check(ops, histcheck.Options{MaxStates: 5_000_000})
	t.Logf("history: %d ops recorded; %s", len(ops), rep)
	for _, kr := range rep.Keys {
		switch kr.Outcome {
		case histcheck.NonLinearizable:
			t.Fatalf("seed %d: coordinator-leader partition broke linearizability: %s", seed, rep)
		case histcheck.Unknown:
			t.Logf("seed %d: key %q verdict unknown (%d ops, budget exhausted)", seed, kr.Key, kr.Ops)
		}
	}
	verifyAckedReadable(t, c, rec, seed)
}

// TestControlPlaneDLMAndSequencerFailover drives the two other control
// services through a leader kill each: an AA+SC workload (per-key DLM
// leases) and an AA+EC workload (shared-log sequencing) both keep their
// contracts when the respective service's leader dies mid-run.
func TestControlPlaneDLMAndSequencerFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("control-plane nemesis test in -short mode")
	}
	seed := nemesisSeed(t)
	logSeed(t, seed)

	t.Run("dlm", func(t *testing.T) {
		opts := replicatedOpts()
		opts.Mode = topology.Mode{Topology: topology.AA, Consistency: topology.Strong}
		opts.Shards = 1
		c, _ := startFaultCluster(t, seed, opts)

		rec := histcheck.NewRecorder()
		var seq, acked atomic.Uint64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			cli := nemesisClient(t, c)
			wg.Add(1)
			go func(w int, cli *client.Client) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := fmt.Sprintf("dlmkill-%06d", seq.Add(1))
					ref := rec.BeginWrite(w, k, k)
					err := cli.Put("", []byte(k), []byte(k))
					rec.EndWrite(ref, err)
					if err == nil {
						acked.Add(1)
					}
				}
			}(w, cli)
		}

		time.Sleep(300 * time.Millisecond)
		for i, s := range c.DLMs {
			if s.IsLeader() {
				t.Logf("killing DLM leader %s", c.dlmIDs[i])
				_ = s.Close()
				break
			}
		}
		deadline := time.Now().Add(electionBound)
		for {
			live := false
			for _, s := range c.DLMs {
				if s.IsLeader() {
					live = true
				}
			}
			if live {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: no DLM leader within %v of the kill", seed, electionBound)
			}
			time.Sleep(10 * time.Millisecond)
		}
		ackedAtFailover := acked.Load()
		time.Sleep(500 * time.Millisecond)
		close(stop)
		wg.Wait()
		if acked.Load() == ackedAtFailover {
			t.Fatalf("seed %d: no writes acked after the DLM leader kill", seed)
		}
		verifyAckedReadable(t, c, rec, seed)
	})

	t.Run("sequencer", func(t *testing.T) {
		opts := replicatedOpts()
		opts.Mode = topology.Mode{Topology: topology.AA, Consistency: topology.Eventual}
		opts.Shards = 1
		c, _ := startFaultCluster(t, seed, opts)

		rec := histcheck.NewRecorder()
		var seq, acked atomic.Uint64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			cli := nemesisClient(t, c)
			wg.Add(1)
			go func(w int, cli *client.Client) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := fmt.Sprintf("seqkill-%06d", seq.Add(1))
					ref := rec.BeginWrite(w, k, k)
					err := cli.Put("", []byte(k), []byte(k))
					rec.EndWrite(ref, err)
					if err == nil {
						acked.Add(1)
					}
				}
			}(w, cli)
		}

		time.Sleep(300 * time.Millisecond)
		for i, s := range c.Logs {
			if s.IsLeader() {
				t.Logf("killing sequencer leader %s", c.logIDs[i])
				_ = s.Close()
				break
			}
		}
		deadline := time.Now().Add(electionBound)
		for {
			live := false
			for _, s := range c.Logs {
				if s.IsLeader() {
					live = true
				}
			}
			if live {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: no sequencer leader within %v of the kill", seed, electionBound)
			}
			time.Sleep(10 * time.Millisecond)
		}
		ackedAtFailover := acked.Load()
		time.Sleep(700 * time.Millisecond)
		close(stop)
		wg.Wait()
		if acked.Load() == ackedAtFailover {
			t.Fatalf("seed %d: no writes acked after the sequencer leader kill", seed)
		}
		// AA+EC contract: replicas converge to written values.
		verifyConverged(t, c, rec, seed)
	})
}
