package cluster

// Overload-nemesis suite: the congestion-collapse acceptance tests for the
// end-to-end overload-control plane (deadline propagation, admission
// control, retry budgets, degradation). A cluster whose engines have a
// real per-op service time (Options.EngineLatency) is driven to a goodput
// plateau by paced workers, then hit with several times the offered load
// by an unpaced surge fleet. The contract under surge:
//
//   - goodput stays at or above 80% of the pre-overload plateau (load is
//     shed with fast Overloaded answers instead of collapsing into
//     timeout churn);
//   - successful ops stay inside a bounded tail (no unbounded queueing);
//   - the control plane keeps breathing — heartbeats and lease renewals
//     ride the priority lane, so data overload must not trigger a single
//     spurious failover (epoch frozen, membership intact);
//   - the recorded history stays linearizable, with Overloaded ops
//     recorded as failed (non-acked) writes, and no acked write is lost.
//
// Runs are seeded like every nemesis suite: failures log a
// BESPOKV_NEMESIS_SEED reproduction line.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/client"
	"bespokv/internal/histcheck"
	"bespokv/internal/overload"
	"bespokv/internal/topology"
)

// overloadzOf extracts the /overloadz section from a server's Status().
func overloadzOf(t *testing.T, status any) map[string]any {
	t.Helper()
	st, ok := status.(map[string]any)
	if !ok {
		t.Fatalf("status is %T, want map", status)
	}
	ov, ok := st["overloadz"].(map[string]any)
	if !ok {
		t.Fatalf("status has no overloadz section: %v", st)
	}
	return ov
}

// gateSheds sums admission-control sheds across every live pair's
// controlet and datalet gates.
func gateSheds(t *testing.T, c *Cluster) uint64 {
	t.Helper()
	var total uint64
	for _, pairs := range c.Shards {
		for _, p := range pairs {
			if p.Killed() {
				continue
			}
			for _, status := range []any{p.Controlet.Status(), p.Datalet.Status()} {
				stats, ok := overloadzOf(t, status)["gate"].(overload.Stats)
				if !ok {
					t.Fatalf("overloadz gate is not overload.Stats")
				}
				total += stats.Sheds()
			}
		}
	}
	return total
}

// surgeClient opens a fully disciplined client: end-to-end op budget,
// retry budget, breakers, and a pipeline watchdog.
func surgeClient(t *testing.T, c *Cluster) *client.Client {
	t.Helper()
	cli, err := c.ClientConfig(client.Config{
		OpTimeout:      300 * time.Millisecond,
		OpBudget:       150 * time.Millisecond,
		RetryBudgetPct: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// runOverloadSurge is the shared surge driver.
func runOverloadSurge(t *testing.T, mode topology.Mode) {
	t.Helper()
	if testing.Short() {
		t.Skip("overload surge test in -short mode")
	}
	seed := nemesisSeed(t)
	logSeed(t, seed)
	c := startCluster(t, Options{
		Mode:     mode,
		Shards:   1,
		Replicas: 3,
		// Tight admission control against a 1ms-per-op engine: the shard's
		// capacity is on the order of 1k writes/s, so a couple dozen
		// unpaced workers are far past saturation.
		MaxInflight:      4,
		ShedTarget:       2 * time.Millisecond,
		EngineLatency:    time.Millisecond,
		HeartbeatTimeout: 600 * time.Millisecond,
		// Failover stays ON: the suite's point is that data overload must
		// not be mistaken for node death.
	})
	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	m0, err := admin.GetMap()
	if err != nil {
		t.Fatal(err)
	}

	rec := histcheck.NewRecorder()
	var seq atomic.Uint64

	// Linearizability side-history: two paced single-attempt workers
	// read/write a small shared key set through BOTH phases, so the
	// checker judges interleavings from before, during and after the
	// surge. Single-attempt clients keep the history honest (a retried
	// write would apply twice); their Overloaded failures are recorded as
	// non-acked writes, exactly the classification under test.
	linKeys := []string{"lin-0", "lin-1", "lin-2", "lin-3", "lin-4", "lin-5", "lin-6", "lin-7"}
	var linVals atomic.Uint64
	linStop := make(chan struct{})
	var linWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		cli := nemesisClient(t, c)
		linWG.Add(1)
		go func(w int, cli *client.Client) {
			defer linWG.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				select {
				case <-linStop:
					return
				default:
				}
				k := linKeys[rng.Intn(len(linKeys))]
				if rng.Intn(2) == 0 {
					v := fmt.Sprint(linVals.Add(1))
					ref := rec.BeginWrite(w, k, v)
					rec.EndWrite(ref, cli.Put("", []byte(k), []byte(v)))
				} else {
					ref := rec.BeginRead(w, k)
					v, ok, err := cli.Get("", []byte(k))
					rec.EndRead(ref, string(v), ok, err)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(w, cli)
	}

	// loadPhase runs n unique-key writers for dur (paced if pace > 0) and
	// returns acked writes per second plus the successful ops' latencies.
	loadPhase := func(base, n int, pace, dur time.Duration) (float64, []time.Duration) {
		var acked, failed atomic.Int64
		lats := make([][]time.Duration, n)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			cli := surgeClient(t, c)
			wg.Add(1)
			go func(w int, cli *client.Client) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					k := fmt.Sprintf("load-%06d", seq.Add(1))
					ref := rec.BeginWrite(base+w, k, k)
					start := time.Now()
					err := cli.Put("", []byte(k), []byte(k))
					rec.EndWrite(ref, err)
					if err != nil {
						failed.Add(1)
					} else {
						acked.Add(1)
						lats[w] = append(lats[w], time.Since(start))
					}
					if pace > 0 {
						time.Sleep(pace)
					}
				}
			}(w, cli)
		}
		t0 := time.Now()
		time.Sleep(dur)
		close(stop)
		wg.Wait()
		elapsed := time.Since(t0)
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		t.Logf("phase: %d workers pace=%v: %d acked, %d failed in %v (%.0f acked/s)",
			n, pace, acked.Load(), failed.Load(), elapsed.Round(time.Millisecond),
			float64(acked.Load())/elapsed.Seconds())
		return float64(acked.Load()) / elapsed.Seconds(), all
	}

	// Phase 1 — plateau: 4 paced workers, comfortably under capacity.
	g0, _ := loadPhase(10, 4, 10*time.Millisecond, 1200*time.Millisecond)
	if g0 == 0 {
		t.Fatalf("seed %d: plateau phase acked nothing", seed)
	}
	shedsBefore := gateSheds(t, c)

	// Phase 2 — surge: 16 unpaced workers, several times the plateau's
	// offered load and past the shard's capacity.
	g1, lats := loadPhase(100, 16, 0, 2*time.Second)

	close(linStop)
	linWG.Wait()

	// Goodput must hold: shedding converts excess load into fast
	// Overloaded answers instead of dragging admitted work into timeouts.
	if g1 < 0.8*g0 {
		t.Fatalf("seed %d: goodput collapsed under surge: plateau %.0f/s, surge %.0f/s (< 80%%)", seed, g0, g1)
	}
	// The surge must actually have engaged admission control, or the run
	// proved nothing.
	if sheds := gateSheds(t, c) - shedsBefore; sheds == 0 {
		t.Fatalf("seed %d: surge engaged no admission control (capacity too high for the fleet?)", seed)
	} else {
		t.Logf("surge shed %d requests via admission control", sheds)
	}
	// Bounded tail for admitted work: an accepted op rides its op budget,
	// not an unbounded queue. The bound is budget + one in-flight attempt
	// (OpTimeout) + scheduling slack.
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p99 := lats[len(lats)*99/100]
		t.Logf("surge success p99 = %v over %d acked ops", p99, len(lats))
		if p99 > time.Second {
			t.Fatalf("seed %d: surge success p99 = %v, want bounded (< 1s)", seed, p99)
		}
	}

	// Control-plane liveness: heartbeats and lease renewals ride the
	// priority lane, so a data-plane surge must not have caused a single
	// failover — same epoch, same membership.
	m1, err := admin.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	if m1.Epoch != m0.Epoch {
		t.Fatalf("seed %d: epoch moved %d -> %d during data overload (spurious failover)", seed, m0.Epoch, m1.Epoch)
	}
	if got, want := len(m1.Shards[0].Replicas), len(m0.Shards[0].Replicas); got != want {
		t.Fatalf("seed %d: membership changed under overload: %d -> %d replicas", seed, want, got)
	}

	// Consistency: every acked write must read back, and the shared-key
	// history must be linearizable. Unknown verdicts (state budget) only
	// warn — the strict gate is NonLinearizable.
	verifyAckedReadable(t, c, rec, seed)
	rep := histcheck.Check(rec.Ops(), histcheck.Options{MaxStates: 5_000_000})
	t.Logf("history: %s", rep)
	for _, kr := range rep.Keys {
		switch kr.Outcome {
		case histcheck.NonLinearizable:
			t.Fatalf("seed %d: overload broke linearizability: %s", seed, rep)
		case histcheck.Unknown:
			t.Logf("seed %d: key %q verdict unknown (%d ops, budget exhausted)", seed, kr.Key, kr.Ops)
		}
	}
}

// TestOverloadSurgeMSSC is the chain-replication surge: entry admission at
// the head, deadline-aware forwards down the chain.
func TestOverloadSurgeMSSC(t *testing.T) {
	runOverloadSurge(t, topology.Mode{Topology: topology.MS, Consistency: topology.Strong})
}

// TestOverloadSurgeAASC is the active-active strong surge: every replica
// accepts writes under DLM locks, write-all fan-outs carry deadlines.
func TestOverloadSurgeAASC(t *testing.T) {
	runOverloadSurge(t, topology.Mode{Topology: topology.AA, Consistency: topology.Strong})
}

// TestOverloadDeadlineExpiry isolates deadline propagation from admission
// control: gates off, engines slow (20ms/op), op budget far below the
// chain's service time. The write must fail fast with the propagated
// deadline expiring mid-chain — counted by the controlets — and the
// cluster must serve a generously-budgeted client right afterwards.
func TestOverloadDeadlineExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("overload deadline test in -short mode")
	}
	c := startCluster(t, Options{
		Mode:          topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:        1,
		Replicas:      3,
		MaxInflight:   -1, // gates off: only the deadline machinery acts
		EngineLatency: 20 * time.Millisecond,
	})
	// /overloadz smoke: both server kinds publish the section in Status().
	ctlOv := overloadzOf(t, c.Shards[0][0].Controlet.Status())
	srvOv := overloadzOf(t, c.Shards[0][0].Datalet.Status())
	expired := func(ov map[string]any) int64 {
		v, ok := ov["deadline_expired"].(int64)
		if !ok {
			t.Fatalf("overloadz has no deadline_expired counter: %v", ov)
		}
		return v
	}
	before := expired(ctlOv) + expired(srvOv)

	cli, err := c.ClientConfig(client.Config{
		Retries:   2,
		OpTimeout: 500 * time.Millisecond,
		// The head's local apply alone (20ms) outlives a 15ms budget, so
		// the chain-forward restamp finds the budget spent and drops the
		// doomed write instead of pushing it downstream. (The chain
		// pipelines apply and forward, so the budget must undercut one
		// apply, not the whole chain, to be provably doomed.)
		OpBudget: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	err = cli.Put("", []byte("doomed"), []byte("v"))
	if err == nil {
		t.Fatal("a write whose budget cannot cover the chain must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadline") && !strings.Contains(msg, "overloaded") && !strings.Contains(msg, "op budget") {
		t.Fatalf("failure does not name the deadline/overload path: %v", err)
	}
	after := expired(overloadzOf(t, c.Shards[0][0].Controlet.Status())) +
		expired(overloadzOf(t, c.Shards[0][0].Datalet.Status()))
	if after <= before {
		t.Fatalf("deadline_expired counters did not move (%d -> %d): deadline never propagated", before, after)
	}

	// The same write with a budget that covers the chain must land.
	roomy, err := c.ClientConfig(client.Config{OpTimeout: 2 * time.Second, OpBudget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer roomy.Close()
	if err := roomy.Put("", []byte("doomed"), []byte("v2")); err != nil {
		t.Fatalf("generously budgeted write failed: %v", err)
	}
	v, ok, err := roomy.Get("", []byte("doomed"))
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("read back (%q, %v, %v)", v, ok, err)
	}
}
