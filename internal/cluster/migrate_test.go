package cluster

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/topology"
)

// migLoad drives continuous writes and strong reads against cli-backed
// clients while a migration runs. Each key carries a monotonically
// increasing counter value; acked[i] records the highest counter the
// writers saw acknowledged, so readers (and the final sweep) can assert
// that no acked write is ever lost or rolled back.
type migLoad struct {
	t      *testing.T
	c      *Cluster
	keys   [][]byte
	acked  []atomic.Int64
	stopCh chan struct{}
	wg     sync.WaitGroup
	errs   atomic.Int64
}

func startMigLoad(t *testing.T, c *Cluster, keys [][]byte, writers, readers int) *migLoad {
	t.Helper()
	l := &migLoad{t: t, c: c, keys: keys, acked: make([]atomic.Int64, len(keys)), stopCh: make(chan struct{})}
	// Load clients get a retry budget that rides out the cutover barrier:
	// the window is milliseconds of real work, but on a starved CI box
	// (GOMAXPROCS=1) scheduling alone stretches every hop, so the budget
	// is seconds. Unthrottled busy-loop clients would starve the migration
	// itself on one core, so each op is lightly paced.
	const loadRetries, loadBackoff = 30, 10 * time.Millisecond
	for w := 0; w < writers; w++ {
		cli, err := c.ClientTuned(loadRetries, loadBackoff)
		if err != nil {
			t.Fatal(err)
		}
		l.wg.Add(1)
		go func(w int) {
			defer l.wg.Done()
			defer cli.Close()
			n := int64(0)
			for {
				select {
				case <-l.stopCh:
					return
				default:
				}
				n++
				for i := w; i < len(keys); i += writers {
					if err := cli.Put("", keys[i], []byte(strconv.FormatInt(n, 10))); err != nil {
						l.errs.Add(1)
						l.t.Errorf("write %s during migration: %v", keys[i], err)
						return
					}
					l.acked[i].Store(n)
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		cli, err := c.ClientTuned(loadRetries, loadBackoff)
		if err != nil {
			t.Fatal(err)
		}
		l.wg.Add(1)
		go func(seed int64) {
			defer l.wg.Done()
			defer cli.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-l.stopCh:
					return
				default:
				}
				i := rng.Intn(len(l.keys))
				before := l.acked[i].Load()
				v, ok, err := cli.Get("", l.keys[i])
				if err != nil {
					l.errs.Add(1)
					l.t.Errorf("read %s during migration: %v", l.keys[i], err)
					return
				}
				if before == 0 {
					continue // key not necessarily written yet
				}
				got, perr := strconv.ParseInt(string(v), 10, 64)
				if !ok || perr != nil || got < before {
					l.errs.Add(1)
					l.t.Errorf("stale read %s: got (%q,%v), acked counter was %d", l.keys[i], v, ok, before)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(int64(r))
	}
	return l
}

func (l *migLoad) stop() {
	close(l.stopCh)
	l.wg.Wait()
}

// sweep asserts every key reads back at least its last acked counter —
// i.e. no acked write was lost during the resize.
func (l *migLoad) sweep(t *testing.T) {
	t.Helper()
	cli, err := l.c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i, k := range l.keys {
		want := l.acked[i].Load()
		v, ok, err := cli.Get("", k)
		if err != nil || !ok {
			t.Fatalf("key %s unreadable after migration: (%v,%v)", k, ok, err)
		}
		got, perr := strconv.ParseInt(string(v), 10, 64)
		if perr != nil || got < want {
			t.Fatalf("key %s rolled back after migration: got %q, acked counter was %d", k, v, want)
		}
	}
}

// TestJoinNodeUnderLoad is the ISSUE acceptance scenario: a 3-shard MS+SC
// cluster under continuous read/write load grows to 4 shards via JoinNode.
// Every key must stay readable with its latest acked value during and
// after the cutover, and roughly 1/n of the keyspace must have moved.
func TestJoinNodeUnderLoad(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          3,
		Replicas:        2,
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const nKeys = 600
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
		if err := cli.Put("", keys[i], []byte("0")); err != nil {
			t.Fatal(err)
		}
	}

	load := startMigLoad(t, c, keys, 3, 2)
	time.Sleep(100 * time.Millisecond) // let the load ramp before resizing

	if err := c.JoinNode(0); err != nil {
		t.Fatalf("JoinNode: %v", err)
	}

	time.Sleep(100 * time.Millisecond) // keep load running past the cutover
	load.stop()
	if load.errs.Load() > 0 {
		t.Fatalf("%d client operations failed during migration", load.errs.Load())
	}
	load.sweep(t)

	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	m, err := admin.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 4 {
		t.Fatalf("map has %d shards after join, want 4", len(m.Shards))
	}
	st, err := admin.MigrationStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active || st.Run == nil || st.Run.Phase != "done" || st.Run.Err != "" {
		t.Fatalf("migration did not finish cleanly: %+v", st)
	}
	// Hash-proportional: the newcomer takes ~1/4 of the keyspace. Allow a
	// wide band — consistent hashing is only statistically uniform.
	if st.Run.KeysMoved < nKeys/10 || st.Run.KeysMoved > 2*nKeys/3 {
		t.Fatalf("moved %d of %d keys, want roughly 1/4", st.Run.KeysMoved, nKeys)
	}
	t.Logf("join moved %d/%d keys (%d bytes), GCed %d",
		st.Run.KeysMoved, nKeys, st.Run.BytesMoved, st.Run.KeysGCed)
}

// TestDrainNodeUnderLoad shrinks a 4-shard cluster back to 3 under the
// same load harness: the drained shard's keyspace spreads over the
// survivors with no acked write lost.
func TestDrainNodeUnderLoad(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          4,
		Replicas:        2,
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const nKeys = 400
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%04d", i))
		if err := cli.Put("", keys[i], []byte("0")); err != nil {
			t.Fatal(err)
		}
	}

	load := startMigLoad(t, c, keys, 2, 2)
	time.Sleep(100 * time.Millisecond)

	if err := c.DrainNode(3); err != nil {
		t.Fatalf("DrainNode: %v", err)
	}

	time.Sleep(100 * time.Millisecond)
	load.stop()
	if load.errs.Load() > 0 {
		t.Fatalf("%d client operations failed during migration", load.errs.Load())
	}
	load.sweep(t)

	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	m, err := admin.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 3 {
		t.Fatalf("map has %d shards after drain, want 3", len(m.Shards))
	}
	st, err := admin.MigrationStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active || st.Run == nil || st.Run.Phase != "done" || st.Run.Err != "" {
		t.Fatalf("migration did not finish cleanly: %+v", st)
	}
	if st.Run.KeysMoved < nKeys/10 || st.Run.KeysMoved > 2*nKeys/3 {
		t.Fatalf("moved %d of %d keys, want roughly 1/4", st.Run.KeysMoved, nKeys)
	}
}

// TestJoinNodeAAEC exercises the version-floor path: under AA+EC the
// shared-log offset assigns versions, so keys migrated from a long-lived
// source stream carry versions far ahead of the newcomer's fresh stream.
// The floor record must lift the new shard's version clock so that
// post-migration writes beat the migrated snapshot under LWW.
func TestJoinNodeAAEC(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.AA, Consistency: topology.Eventual},
		Shards:          2,
		Replicas:        2,
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Overwrite each key several times to inflate the source streams'
	// offsets (and therefore the migrated versions).
	const nKeys = 200
	keys := make([][]byte, nKeys)
	for round := 0; round < 3; round++ {
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key-%04d", i))
			if err := cli.Put("", keys[i], []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatal(err)
			}
		}
	}

	if err := c.JoinNode(0); err != nil {
		t.Fatalf("JoinNode: %v", err)
	}

	// Every key must still read its last pre-migration value (eventual
	// reads can lag, so converge).
	for _, k := range keys {
		k := k
		eventually(t, 10*time.Second, func() string {
			v, ok, err := cli.Get("", k)
			if err != nil || !ok || string(v) != "r2" {
				return fmt.Sprintf("key %s after join: (%q,%v,%v)", k, v, ok, err)
			}
			return ""
		})
	}
	// Post-migration writes must win over the migrated high versions on
	// the new shard — this is exactly what the floor record guarantees.
	for _, k := range keys {
		if err := cli.Put("", k, []byte("final")); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		k := k
		eventually(t, 10*time.Second, func() string {
			v, ok, err := cli.Get("", k)
			if err != nil || !ok || string(v) != "final" {
				return fmt.Sprintf("post-join write lost on %s: (%q,%v,%v)", k, v, ok, err)
			}
			return ""
		})
	}
}
