package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

var allModes = []topology.Mode{
	{Topology: topology.MS, Consistency: topology.Strong},
	{Topology: topology.MS, Consistency: topology.Eventual},
	{Topology: topology.AA, Consistency: topology.Strong},
	{Topology: topology.AA, Consistency: topology.Eventual},
}

func startCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// waitConverged polls until every live replica's datalet reports the same
// number of live keys in the default table.
func waitConverged(t *testing.T, c *Cluster, shard int, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, p := range c.Shards[shard] {
			if p.Killed() {
				continue
			}
			e := p.Datalet.Engine("")
			if e == nil || e.Len() != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			var got []int
			for _, p := range c.Shards[shard] {
				if !p.Killed() {
					got = append(got, p.Datalet.Engine("").Len())
				}
			}
			t.Fatalf("replicas never converged to %d keys: %v", want, got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// eventually retries fn (returning a failure description or "") until it
// succeeds or the deadline passes. Under eventual consistency reads from
// arbitrary replicas legitimately lag acknowledged writes, so correctness
// tests assert convergence, not read-your-writes.
func eventually(t *testing.T, d time.Duration, fn func() string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		problem := fn()
		if problem == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(problem)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPutGetDelAllModes(t *testing.T) {
	for _, mode := range allModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			c := startCluster(t, Options{Mode: mode, Shards: 2, Replicas: 3, DisableFailover: true})
			cli, err := c.Client()
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("key-%03d", i))
				if err := cli.Put("", k, []byte(fmt.Sprintf("val-%03d", i))); err != nil {
					t.Fatalf("Put(%s): %v", k, err)
				}
			}
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("key-%03d", i))
				want := fmt.Sprintf("val-%03d", i)
				eventually(t, 5*time.Second, func() string {
					v, ok, err := cli.Get("", k)
					if err != nil || !ok || string(v) != want {
						return fmt.Sprintf("Get(%s) = (%q,%v,%v)", k, v, ok, err)
					}
					return ""
				})
			}
			found, err := cli.Del("", []byte("key-000"))
			if err != nil || !found {
				t.Fatalf("Del: found=%v err=%v", found, err)
			}
			eventually(t, 5*time.Second, func() string {
				if _, ok, _ := cli.Get("", []byte("key-000")); ok {
					return "deleted key visible"
				}
				return ""
			})
			if _, ok, _ := cli.Get("", []byte("never")); ok {
				t.Fatal("missing key visible")
			}
		})
	}
}

func TestReplicasConvergeAllModes(t *testing.T) {
	for _, mode := range allModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			c := startCluster(t, Options{Mode: mode, Shards: 1, Replicas: 3, DisableFailover: true})
			cli, err := c.Client()
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			const n = 100
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("key-%03d", i))
				if err := cli.Put("", k, k); err != nil {
					t.Fatal(err)
				}
			}
			waitConverged(t, c, 0, n)
			// Every replica holds identical values.
			for i := 0; i < n; i += 13 {
				k := []byte(fmt.Sprintf("key-%03d", i))
				for ri, p := range c.Shards[0] {
					v, _, ok, err := p.Datalet.Engine("").Get(k)
					if err != nil || !ok || !bytes.Equal(v, k) {
						t.Fatalf("replica %d: Get(%s) = (%q,%v,%v)", ri, k, v, ok, err)
					}
				}
			}
		})
	}
}

// TestAAECConcurrentWritersConverge is the Dynomite conflict scenario
// (§C-C): two different masters write the same key concurrently; the
// shared log orders them, so every replica must converge to the same value.
func TestAAECConcurrentWritersConverge(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.AA, Consistency: topology.Eventual},
		Shards:          1,
		Replicas:        3,
		DisableFailover: true,
	})
	cli1, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli1.Close()
	cli2, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()

	var wg sync.WaitGroup
	for w, cli := range []interface {
		Put(string, []byte, []byte) error
	}{cli1, cli2} {
		wg.Add(1)
		go func(w int, cli interface {
			Put(string, []byte, []byte) error
		}) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = cli.Put("", []byte("contended"), []byte(fmt.Sprintf("writer-%d-%d", w, i)))
			}
		}(w, cli)
	}
	wg.Wait()

	// All replicas converge to one value.
	deadline := time.Now().Add(10 * time.Second)
	for {
		vals := map[string]bool{}
		for _, p := range c.Shards[0] {
			v, _, ok, err := p.Datalet.Engine("").Get([]byte("contended"))
			if err != nil || !ok {
				vals["missing"] = true
				continue
			}
			vals[string(v)] = true
		}
		if len(vals) == 1 {
			if vals["missing"] {
				t.Fatal("key missing everywhere")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas diverged: %v", vals)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAAECShardsStayIsolated guards against cross-shard contamination via
// the shared log: every shard's appliers consume the same total order but
// must apply only their own shard's stream.
func TestAAECShardsStayIsolated(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.AA, Consistency: topology.Eventual},
		Shards:          2,
		Replicas:        3,
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 100
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Each key must exist on exactly one shard's replicas: total live
	// pairs across all datalets == n × replicas, not n × all nodes.
	eventually(t, 10*time.Second, func() string {
		total := 0
		for _, pairs := range c.Shards {
			for _, p := range pairs {
				total += p.Datalet.Engine("").Len()
			}
		}
		if total != n*3 {
			return fmt.Sprintf("total pairs %d, want %d (shards leaking through the shared log?)", total, n*3)
		}
		return ""
	})
}

func TestPerRequestConsistency(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          1,
		Replicas:        3,
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put("", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Strong read (default under MS+SC).
	v, ok, err := cli.GetLevel("", []byte("k"), wire.LevelStrong)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("strong get: (%q,%v,%v)", v, ok, err)
	}
	// Eventual read is served by any replica; under synchronous chain
	// replication every replica already has the value.
	for i := 0; i < 10; i++ {
		v, ok, err = cli.GetLevel("", []byte("k"), wire.LevelEventual)
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("eventual get: (%q,%v,%v)", v, ok, err)
		}
	}
}

func TestRangeQueryAcrossShards(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          4,
		Replicas:        2,
		Engine:          "btree",
		Partitioner:     topology.RangePartitioner,
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Keys spread across the whole byte space so every shard owns some.
	var want []string
	for i := 0; i < 256; i += 3 {
		k := string([]byte{byte(i)}) + fmt.Sprintf("-key-%03d", i)
		if err := cli.Put("", []byte(k), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
		want = append(want, k)
	}
	got, err := cli.GetRange("", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("range scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if string(got[i].Key) != want[i] {
			t.Fatalf("range scan [%d] = %q, want %q", i, got[i].Key, want[i])
		}
	}
	// Bounded sub-range with limit.
	got, err = cli.GetRange("", []byte{0x40}, []byte{0xc0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("limited scan returned %d", len(got))
	}
	for _, kv := range got {
		if kv.Key[0] < 0x40 || kv.Key[0] >= 0xc0 {
			t.Fatalf("key %q outside scan range", kv.Key)
		}
	}
}

func TestPolyglotPersistence(t *testing.T) {
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Eventual},
		Shards:           1,
		Replicas:         3,
		EnginesByReplica: []string{"lsm", "btree", "applog"},
		DisableFailover:  true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 200
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, c, 0, n)
	for ri, p := range c.Shards[0] {
		e := p.Datalet.Engine("")
		wantName := []string{"lsm", "btree", "applog"}[ri]
		if e.Name() != wantName {
			t.Fatalf("replica %d engine = %s, want %s", ri, e.Name(), wantName)
		}
	}
}

func TestTextProtocolDatalets(t *testing.T) {
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:           1,
		Replicas:         3,
		DataletCodecName: "text",
		DisableFailover:  true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put("", []byte("k"), []byte("tRedis-value")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cli.Get("", []byte("k"))
	if err != nil || !ok || string(v) != "tRedis-value" {
		t.Fatalf("get through text datalets: (%q,%v,%v)", v, ok, err)
	}
}

func TestTables(t *testing.T) {
	c := startCluster(t, Options{Shards: 2, Replicas: 2, DisableFailover: true})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.CreateTable("jobs"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Put("jobs", []byte("j1"), []byte("running")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Put("", []byte("j1"), []byte("default")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cli.Get("jobs", []byte("j1"))
	if err != nil || !ok || string(v) != "running" {
		t.Fatalf("tables not isolated: (%q,%v,%v)", v, ok, err)
	}
	if err := cli.DeleteTable("jobs"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cli.Get("jobs", []byte("j1")); ok {
		t.Fatal("dropped table still serves")
	}
}

func TestConcurrentClientsAllModes(t *testing.T) {
	for _, mode := range allModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			c := startCluster(t, Options{Mode: mode, Shards: 2, Replicas: 3, DisableFailover: true})
			const workers = 4
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cli, err := c.Client()
					if err != nil {
						errCh <- err
						return
					}
					defer cli.Close()
					for i := 0; i < 50; i++ {
						k := []byte(fmt.Sprintf("w%d-key-%03d", w, i))
						if err := cli.Put("", k, k); err != nil {
							errCh <- fmt.Errorf("w%d put: %w", w, err)
							return
						}
						// EC modes don't promise read-your-writes from
						// arbitrary replicas; poll briefly.
						deadline := time.Now().Add(5 * time.Second)
						for {
							v, ok, err := cli.Get("", k)
							if err == nil && ok && bytes.Equal(v, k) {
								break
							}
							if time.Now().After(deadline) {
								errCh <- fmt.Errorf("w%d get(%s): (%q,%v,%v)", w, k, v, ok, err)
								return
							}
							time.Sleep(5 * time.Millisecond)
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}
