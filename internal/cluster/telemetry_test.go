package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/client"
	"bespokv/internal/faultnet"
	"bespokv/internal/metrics"
	"bespokv/internal/obs"
	"bespokv/internal/telemetry"
	"bespokv/internal/topology"
)

// keysByShard returns one key routed to each shard index under the
// cluster's installed map.
func keysByShard(t *testing.T, c *Cluster) [][]byte {
	t.Helper()
	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	m, err := admin.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	ring := topology.BuildRing(m)
	keys := make([][]byte, len(m.Shards))
	found := 0
	for i := 0; found < len(keys) && i < 100_000; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		si := m.ShardFor(k, ring)
		if keys[si] == nil {
			keys[si] = k
			found++
		}
	}
	if found != len(keys) {
		t.Fatalf("found keys for %d of %d shards", found, len(keys))
	}
	return keys
}

// findAlert returns the (objective, shard) alert from a snapshot, if any.
func findAlert(snap telemetry.ClusterSnapshot, objective, shard string) (telemetry.Alert, bool) {
	for _, a := range snap.Alerts {
		if a.Objective == objective && a.Shard == shard {
			return a, true
		}
	}
	return telemetry.Alert{}, false
}

// TestTelemetryEndToEnd drives the whole telemetry plane through a live
// cluster: a skewed workload must surface the true hot shard and hot keys
// in the aggregator's /clusterz view, a faultnet-injected latency
// regression must walk the SLO alert through pending → firing → resolved
// exactly once (no flapping), and an isolated node's telemetry must be
// flagged stale.
func TestTelemetryEndToEnd(t *testing.T) {
	// Time every request so per-window histogram populations are
	// deterministic rather than 1-in-8 sampled.
	prev := metrics.SetLatencySampleEvery(1)
	t.Cleanup(func() { metrics.SetLatencySampleEvery(prev) })

	const window = 80 * time.Millisecond
	obj := telemetry.Objective{
		Name:          "put-p50",
		Class:         telemetry.ClassPut,
		Quantile:      0.5, // budget 50%: injected delay burns at 2x, healthy at ~0
		Threshold:     25 * time.Millisecond,
		FastWindows:   2,
		SlowWindows:   4,
		BurnThreshold: 1.5,
		HoldWindows:   2,
		ClearWindows:  3,
	}
	c, f := startFaultCluster(t, 7, Options{
		Shards:            2,
		Replicas:          2,
		DisableFailover:   true,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  400 * time.Millisecond,
		TelemetryInterval: window,
		SLOs:              []telemetry.Objective{obj},
	})

	cli, err := c.ClientConfig(client.Config{OpTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	keys := keysByShard(t, c)
	hotIdx := 0
	hotKey, coldKey := keys[hotIdx], keys[1-hotIdx]
	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { admin.Close() })
	m, err := admin.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	hotShard := m.Shards[hotIdx].ID
	for _, k := range keys {
		if err := cli.Put("", k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Skewed background workload: most traffic hammers hotKey (gets plus
	// a steady trickle of puts, which the SLO phase degrades), the rest
	// keeps the cold shard warm enough to appear in the view. Runs through
	// the hot-shard and SLO phases; errors under injected faults are
	// tolerated (counted, not fatal).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var workErrs atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := hotKey
				if i%10 == 9 {
					k = coldKey
				}
				var err error
				if i%3 == 0 {
					err = cli.Put("", k, []byte("v"))
				} else {
					_, _, err = cli.Get("", k)
				}
				if err != nil {
					workErrs.Add(1)
				}
			}
		}()
	}
	stopWork := func() {
		select {
		case <-stop:
		default:
			close(stop)
			wg.Wait()
		}
	}
	t.Cleanup(stopWork)

	// Phase 1: the aggregator's merged view must rank the skew's true hot
	// shard first and surface hotKey as its top key.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := admin.Telemetry()
		if err != nil {
			t.Fatal(err)
		}
		ok := len(snap.Shards) == 2 &&
			snap.Shards[0].Shard == hotShard &&
			snap.Shards[0].OpsPerSec > 2*snap.Shards[1].OpsPerSec &&
			len(snap.Shards[0].HotKeys) > 0 &&
			snap.Shards[0].HotKeys[0].Key == string(hotKey)
		if ok {
			break
		}
		if time.Now().After(deadline) {
			b, _ := json.Marshal(snap)
			t.Fatalf("hot shard never surfaced; want %s hot with top key %q, got: %s",
				hotShard, hotKey, b)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The same view over HTTP: /clusterz (JSON and text) and /alertz.
	osrv, err := obs.Serve("127.0.0.1:0", obs.Options{
		Clusterz: func() telemetry.ClusterSnapshot { return c.Coord.Telemetry().Cluster() },
		Alertz:   func() []telemetry.Alert { return c.Coord.Telemetry().SLO().Alerts() },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { osrv.Close() })
	httpBody := func(path string) string {
		resp, err := http.Get("http://" + osrv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	var clusterz telemetry.ClusterSnapshot
	if err := json.Unmarshal([]byte(httpBody("/clusterz")), &clusterz); err != nil {
		t.Fatalf("/clusterz is not valid JSON: %v", err)
	}
	if len(clusterz.Shards) == 0 || clusterz.Shards[0].Shard != hotShard {
		t.Fatalf("/clusterz JSON does not lead with hot shard %s", hotShard)
	}
	text := httpBody("/clusterz?format=text")
	if !strings.Contains(text, "SHARDS") || !strings.Contains(text, hotShard) {
		t.Fatalf("/clusterz?format=text missing shard table:\n%s", text)
	}
	var alertz struct {
		Alerts []telemetry.Alert `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(httpBody("/alertz")), &alertz); err != nil {
		t.Fatalf("/alertz is not valid JSON: %v", err)
	}

	// Phase 2: a latency regression on the hot shard — its chain
	// replication link (head→tail and the ack back) picks up 40ms each
	// way, pushing every hot-shard put far past the 25ms objective — must
	// drive the SLO alert to firing. Gets and the control plane are
	// untouched.
	f.SetLinkBoth(c.Shards[hotIdx][0].Node.ID, c.Shards[hotIdx][1].Node.ID,
		faultnet.Rule{Delay: 40 * time.Millisecond})
	deadline = time.Now().Add(15 * time.Second)
	for {
		snap, err := admin.Telemetry()
		if err != nil {
			t.Fatal(err)
		}
		if a, ok := findAlert(snap, obj.Name, hotShard); ok && a.StateName == "firing" {
			break
		}
		if time.Now().After(deadline) {
			b, _ := json.Marshal(snap.Alerts)
			t.Fatalf("SLO alert never fired under injected delay; alerts: %s", b)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Heal; with the workload still running at healthy latency the alert
	// must resolve, having fired exactly once across the whole incident.
	f.ClearLinks()
	deadline = time.Now().Add(15 * time.Second)
	for {
		snap, err := admin.Telemetry()
		if err != nil {
			t.Fatal(err)
		}
		a, ok := findAlert(snap, obj.Name, hotShard)
		if ok && a.StateName == "resolved" {
			if a.Fired != 1 {
				t.Fatalf("alert flapped: fired %d times, want 1", a.Fired)
			}
			break
		}
		if !ok {
			// Retired straight past our polling — only legal from
			// resolved, and only after it stayed clear; treat as resolved.
			break
		}
		if time.Now().After(deadline) {
			b, _ := json.Marshal(snap.Alerts)
			t.Fatalf("SLO alert never resolved after heal; alerts: %s", b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stopWork()

	// Phase 3: a partitioned node stops reporting; the aggregator must
	// flag exactly that node's telemetry stale while the rest stay fresh.
	lost := c.Shards[1-hotIdx][1].Node.ID
	f.Isolate(lost)
	deadline = time.Now().Add(10 * time.Second)
	for {
		snap, err := admin.Telemetry()
		if err != nil {
			t.Fatal(err)
		}
		staleLost, freshOther := false, true
		for _, n := range snap.Nodes {
			isLost := strings.HasPrefix(n.Node, lost)
			if isLost && n.Stale {
				staleLost = true
			}
			if !isLost && n.Stale {
				freshOther = false
			}
		}
		if staleLost && freshOther {
			break
		}
		if time.Now().After(deadline) {
			b, _ := json.Marshal(snap.Nodes)
			t.Fatalf("isolated node %s never went stale (or others did); nodes: %s", lost, b)
		}
		time.Sleep(20 * time.Millisecond)
	}
	f.Heal()
}
