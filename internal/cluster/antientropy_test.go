package cluster

import (
	"fmt"
	"testing"
	"time"

	"bespokv/internal/datalet"
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// TestReconcileRepairsDivergedSlave simulates a slave that missed
// asynchronous propagation (its datalet is emptied behind the system's
// back) and verifies the anti-entropy push from the master restores it.
func TestReconcileRepairsDivergedSlave(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          1,
		Replicas:        3,
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 100
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Sabotage the mid replica: delete half its keys directly at the
	// engine with absurdly low versions so the loss is invisible to LWW
	// bookkeeping (emulating lost propagation, not deletions).
	victim := c.Shards[0][1].Datalet.Engine("")
	lost := 0
	for i := 0; i < n; i += 2 {
		k := []byte(fmt.Sprintf("key-%03d", i))
		// Remove the pair entirely by writing a tombstone then checking;
		// engines have no raw "forget", so use Delete at the current
		// version +1 — from the cluster's perspective the replica now
		// diverges from its peers.
		if _, _, err := victim.Delete(k, 0); err != nil {
			t.Fatal(err)
		}
		lost++
	}
	if victim.Len() != n-lost {
		t.Fatalf("sabotage failed: len=%d", victim.Len())
	}

	// Anti-entropy push from the head repairs... nothing here: the
	// victim's tombstones are NEWER than the head's values, so LWW keeps
	// them (that is correct for real deletions). Reconcile must report
	// those as PeerNewer rather than clobbering them.
	pairs, accepted, err := c.Reconcile(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pairs != n {
		t.Fatalf("reconcile pushed %d pairs, want %d", pairs, n)
	}
	if accepted != n-lost {
		t.Fatalf("accepted=%d, want %d (tombstoned keys must win)", accepted, n-lost)
	}

	// Now the interesting direction: push FROM the victim — its newer
	// tombstones propagate outward?? No: reconcile only pushes live
	// pairs (snapshot skips tombstones), so nothing is clobbered either.
	pairs, accepted, err = c.Reconcile(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pairs != n-lost || accepted != n-lost {
		t.Fatalf("victim push: pairs=%d accepted=%d, want %d/%d", pairs, accepted, n-lost, n-lost)
	}
}

// TestReconcileRestoresWipedTable wipes one replica's copy of a table
// wholesale (the operator-error / disk-replacement scenario: the engine
// behind the table is dropped and recreated empty) and verifies the
// master's anti-entropy push fully restores it.
func TestReconcileRestoresWipedTable(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Eventual},
		Shards:          1,
		Replicas:        3,
		DisableFailover: true,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	const n = 80
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := cli.Put("t", k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for propagation, then wipe the table on the tail replica by
	// dropping and recreating it straight at the datalet.
	eventually(t, 10*time.Second, func() string {
		if got := c.Shards[0][2].Datalet.Engine("t").Len(); got != n {
			return fmt.Sprintf("tail has %d/%d before wipe", got, n)
		}
		return ""
	})
	victim, err := datalet.Dial(c.Net, c.Shards[0][2].Node.DataletAddr, c.Codec)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	var resp wire.Response
	if err := victim.Do(&wire.Request{Op: wire.OpDeleteTable, Table: "t"}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := victim.Do(&wire.Request{Op: wire.OpCreateTable, Table: "t"}, &resp); err != nil {
		t.Fatal(err)
	}
	if got := c.Shards[0][2].Datalet.Engine("t").Len(); got != 0 {
		t.Fatalf("wipe failed: %d keys remain", got)
	}

	// The master's push restores everything (blank engine loses every
	// LWW race).
	pairs, accepted, err := c.Reconcile(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pairs < n || accepted < n {
		t.Fatalf("pairs=%d accepted=%d, want >= %d", pairs, accepted, n)
	}
	if got := c.Shards[0][2].Datalet.Engine("t").Len(); got != n {
		t.Fatalf("wiped replica has %d/%d after reconcile", got, n)
	}
}
