package cluster

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/topology"
)

// TestMSSCMonotonicReads is a linearizability smoke check for chain
// replication: one writer stores strictly increasing counter values under
// one key while several readers issue strong reads. Each reader's observed
// sequence must be non-decreasing, and no reader may see a value greater
// than the highest acknowledged write at its read's start.
func TestMSSCMonotonicReads(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          1,
		Replicas:        3,
		DisableFailover: true,
	})
	writer, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	key := []byte("counter")
	if err := writer.Put("", key, []byte("0")); err != nil {
		t.Fatal(err)
	}

	var acked atomic.Int64 // highest acknowledged value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := writer.Put("", key, []byte(strconv.FormatInt(v, 10))); err != nil {
				continue
			}
			acked.Store(v)
		}
	}()

	const readers = 3
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cli, err := c.Client()
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			last := int64(-1)
			for i := 0; i < 400; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ackedBefore := acked.Load()
				raw, ok, err := cli.Get("", key)
				if err != nil || !ok {
					errCh <- fmt.Errorf("reader %d: get failed: ok=%v err=%v", r, ok, err)
					return
				}
				v, err := strconv.ParseInt(string(raw), 10, 64)
				if err != nil {
					errCh <- fmt.Errorf("reader %d: bad value %q", r, raw)
					return
				}
				if v < last {
					errCh <- fmt.Errorf("reader %d: non-monotonic read %d after %d", r, v, last)
					return
				}
				// A strong read may see a write in flight (acked after
				// the read started) but never one that was never issued:
				// allow acked-at-start .. acked-now+1.
				if v < ackedBefore {
					errCh <- fmt.Errorf("reader %d: stale strong read %d (acked was already %d)", r, v, ackedBefore)
					return
				}
				last = v
			}
		}(r)
	}

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
