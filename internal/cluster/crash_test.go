package cluster

// Crash-restart nemesis tests: clusters run with Options.Durable, so every
// node owns a crash-faithful filesystem (internal/store/faultfs) and its
// engines write-ahead-log each write before acking. Crash() emulates
// kill -9 plus power loss — unsynced data vanishes, fsynced data survives —
// and Restart() reboots the node over its surviving disk image and rejoins
// it through the coordinator. The suites assert the durability contract
// end-to-end: strong modes lose no acked write across crashes, eventual
// modes reconverge, and a restarted node backfills an incremental delta
// rather than re-copying the keyspace. Failures log the seed; rerun with
// BESPOKV_NEMESIS_SEED=<seed> to replay the identical crash schedule and
// torn-write coin flips.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/client"
	"bespokv/internal/histcheck"
	"bespokv/internal/topology"
)

// waitEvicted polls the coordinator's map until nodeID is gone from it (the
// failure detector swept the crashed node), so follow-up writes travel the
// repaired chain.
func waitEvicted(t *testing.T, c *Cluster, nodeID string) {
	t.Helper()
	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m, err := admin.GetMap()
		if err == nil {
			present := false
			for _, shard := range m.Shards {
				for _, n := range shard.Replicas {
					if n.ID == nodeID {
						present = true
					}
				}
			}
			if !present {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s never evicted from the map", nodeID)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// restartEventually retries Restart until the coordinator accepts the
// rejoin: right after an eviction a failover epoch may still be settling,
// and the retry mirrors what a rebooting node's supervisor would do.
func restartEventually(t *testing.T, c *Cluster, shard, replica int) RejoinResult {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		reply, err := c.Restart(shard, replica)
		if err == nil {
			return RejoinResult{Pairs: reply.Pairs, Delta: reply.Delta}
		}
		if time.Now().After(deadline) {
			t.Fatalf("Restart(%d,%d): %v", shard, replica, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// RejoinResult mirrors coordinator.RejoinReply for the test helpers.
type RejoinResult struct {
	Pairs int
	Delta bool
}

// crashCase parameterizes the shared crash-nemesis driver.
type crashCase struct {
	mode   topology.Mode
	engine string
	torn   bool // crash with torn final writes
}

// runCrashNemesis is the shared crash-restart driver: unique-key writers
// hammer a durable cluster while a seeded schedule crashes replicas
// (occasionally with torn tails), waits for eviction, and reboots them over
// their surviving disks. Afterwards strong modes must serve every acked
// write; eventual modes must converge to written values.
func runCrashNemesis(t *testing.T, cc crashCase) {
	t.Helper()
	if testing.Short() {
		t.Skip("crash nemesis test in -short mode")
	}
	seed := nemesisSeed(t)
	logSeed(t, seed)
	c := startCluster(t, Options{
		Mode:             cc.mode,
		Engine:           cc.engine,
		Shards:           1,
		Replicas:         3,
		Durable:          true,
		Seed:             seed,
		HeartbeatTimeout: 400 * time.Millisecond,
	})

	rec := histcheck.NewRecorder()
	var seq, ackedN, failedN atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		cli := nemesisClient(t, c)
		wg.Add(1)
		go func(w int, cli *client.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := seq.Add(1)
				k := fmt.Sprintf("crash-%06d", i)
				ref := rec.BeginWrite(w, k, k)
				err := cli.Put("", []byte(k), []byte(k))
				rec.EndWrite(ref, err)
				if err != nil {
					failedN.Add(1)
					// Back off while the chain is broken: spinning on fast
					// failures floods the history without adding coverage.
					time.Sleep(10 * time.Millisecond)
				} else {
					ackedN.Add(1)
					// Pace the history: the post-run checks walk every acked
					// write, and coverage comes from the crash schedule, not
					// raw op volume.
					time.Sleep(time.Millisecond)
				}
			}
		}(w, cli)
	}

	// Two seeded crash→evict→restart rounds while the workload runs. The
	// eviction wait keeps rounds deterministic: each crash is fully
	// repaired (chain shortened, writes flowing) before the reboot rejoins.
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < 2; round++ {
		time.Sleep(400 * time.Millisecond)
		victim := rng.Intn(3)
		id := c.Shards[0][victim].Node.ID
		if cc.torn && rng.Intn(2) == 0 {
			t.Logf("round %d: torn-crashing %s", round, id)
			if err := c.CrashTorn(0, victim); err != nil {
				t.Fatal(err)
			}
		} else {
			t.Logf("round %d: crashing %s", round, id)
			if err := c.Crash(0, victim); err != nil {
				t.Fatal(err)
			}
		}
		waitEvicted(t, c, id)
		res := restartEventually(t, c, 0, victim)
		t.Logf("round %d: %s rejoined (%d records, delta=%v)", round, id, res.Pairs, res.Delta)
	}

	time.Sleep(500 * time.Millisecond) // settle: rejoin epochs propagate
	close(stop)
	wg.Wait()

	t.Logf("crash run: %d acked, %d failed transiently", ackedN.Load(), failedN.Load())
	if ackedN.Load() == 0 {
		t.Fatalf("seed %d: no writes succeeded during the crash run", seed)
	}

	if cc.mode.Consistency == topology.Strong {
		verifyAckedReadable(t, c, rec, seed)
	} else {
		verifyConverged(t, c, rec, seed)
	}
}

// TestCrashRestartMSSC is the core durability gate: MS+SC with the durable
// ht engine under crash/restart rounds must serve every acked write — an
// ack means the WAL fsynced, so a crash may only lose writes that were
// never acknowledged.
func TestCrashRestartMSSC(t *testing.T) {
	runCrashNemesis(t, crashCase{
		mode:   topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		engine: "ht",
	})
}

// TestCrashRestartTornLSM runs the same gate on the LSM engine with torn
// final writes: recovery must truncate the WAL's torn tail without losing
// any fsynced (acked) record.
func TestCrashRestartTornLSM(t *testing.T) {
	runCrashNemesis(t, crashCase{
		mode:   topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		engine: "lsm",
		torn:   true,
	})
}

// TestCrashRestartMSEC checks the eventual-consistency contract across
// crashes: after restarts and anti-entropy, every in-map replica agrees and
// holds only written values.
func TestCrashRestartMSEC(t *testing.T) {
	runCrashNemesis(t, crashCase{
		mode:   topology.Mode{Topology: topology.MS, Consistency: topology.Eventual},
		engine: "ht",
	})
}

// TestRejoinDeltaTransfersOnlyMissedWrites is the incremental-rejoin gate:
// a restarted replica that recovered N records from its WAL must backfill
// only the writes it missed while down, not the whole keyspace. The base
// load is 40× the delta, and the reply must confirm both the delta path and
// a transfer bounded by what was missed.
func TestRejoinDeltaTransfersOnlyMissedWrites(t *testing.T) {
	seed := nemesisSeed(t)
	logSeed(t, seed)
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:           1,
		Replicas:         3,
		Durable:          true,
		Seed:             seed,
		HeartbeatTimeout: 400 * time.Millisecond,
	})
	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const base, delta = 400, 10
	for i := 0; i < base; i++ {
		k := []byte(fmt.Sprintf("base-%04d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}

	victim := 2 // chain tail
	id := c.Shards[0][victim].Node.ID
	if err := c.Crash(0, victim); err != nil {
		t.Fatal(err)
	}
	waitEvicted(t, c, id)

	for i := 0; i < delta; i++ {
		k := []byte(fmt.Sprintf("delta-%04d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}

	res := restartEventually(t, c, 0, victim)
	if !res.Delta {
		t.Fatalf("seed %d: rejoin used a full export, want incremental delta", seed)
	}
	// The delta may legitimately include a few extra records (writes raced
	// into the snapshot window), but must stay a small fraction of base.
	if res.Pairs < delta || res.Pairs > base/4 {
		t.Fatalf("seed %d: delta transferred %d records, want >= %d and <= %d (base %d)",
			seed, res.Pairs, delta, base/4, base)
	}
	t.Logf("rejoin transferred %d records for a %d-key miss over a %d-key base", res.Pairs, delta, base)

	// The restarted node is the new read tail: every key, old and new, must
	// be served through it.
	for i := 0; i < base; i += 37 {
		k := []byte(fmt.Sprintf("base-%04d", i))
		eventually(t, 5*time.Second, func() string {
			v, ok, err := cli.Get("", k)
			if err != nil || !ok || string(v) != string(k) {
				return fmt.Sprintf("Get(%s) = (%q,%v,%v)", k, v, ok, err)
			}
			return ""
		})
	}
	for i := 0; i < delta; i++ {
		k := []byte(fmt.Sprintf("delta-%04d", i))
		eventually(t, 5*time.Second, func() string {
			v, ok, err := cli.Get("", k)
			if err != nil || !ok || string(v) != string(k) {
				return fmt.Sprintf("Get(%s) = (%q,%v,%v)", k, v, ok, err)
			}
			return ""
		})
	}
}

// TestRejoinFallsBackToFullExport covers the automatic fallback: a node
// that crashes before making anything durable recovers an empty store (no
// watermark), so its rejoin must use the full export — and still end up
// complete.
func TestRejoinFallsBackToFullExport(t *testing.T) {
	seed := nemesisSeed(t)
	logSeed(t, seed)
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:           1,
		Replicas:         3,
		Durable:          true,
		Seed:             seed,
		HeartbeatTimeout: 400 * time.Millisecond,
	})

	victim := 2
	id := c.Shards[0][victim].Node.ID
	if err := c.Crash(0, victim); err != nil {
		t.Fatal(err)
	}
	waitEvicted(t, c, id)

	cli, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 50
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("fb-%04d", i))
		if err := cli.Put("", k, k); err != nil {
			t.Fatal(err)
		}
	}

	res := restartEventually(t, c, 0, victim)
	if res.Delta {
		t.Fatalf("seed %d: watermark-less rejoin claimed a delta transfer", seed)
	}
	if res.Pairs < n {
		t.Fatalf("seed %d: full-export rejoin transferred %d records, want >= %d", seed, res.Pairs, n)
	}
	for i := 0; i < n; i += 7 {
		k := []byte(fmt.Sprintf("fb-%04d", i))
		eventually(t, 5*time.Second, func() string {
			v, ok, err := cli.Get("", k)
			if err != nil || !ok || string(v) != string(k) {
				return fmt.Sprintf("Get(%s) = (%q,%v,%v)", k, v, ok, err)
			}
			return ""
		})
	}
}

// TestCrashRestartLinearizable records a concurrent read/write history
// around a crash→evict→restart of the chain head under MS+SC and requires
// every key to verify linearizable — the strongest statement that
// crash-restart durability composes with the consistency protocol.
func TestCrashRestartLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("crash linearizability test in -short mode")
	}
	seed := nemesisSeed(t)
	logSeed(t, seed)
	c := startCluster(t, Options{
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:           1,
		Replicas:         3,
		Durable:          true,
		Seed:             seed,
		HeartbeatTimeout: 400 * time.Millisecond,
	})

	keys := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	rec := histcheck.NewRecorder()
	var vals atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		cli := nemesisClient(t, c)
		wg.Add(1)
		go func(w int, cli *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[rng.Intn(len(keys))]
				if rng.Intn(2) == 0 {
					v := fmt.Sprint(vals.Add(1))
					ref := rec.BeginWrite(w, k, v)
					err := cli.Put("", []byte(k), []byte(v))
					rec.EndWrite(ref, err)
					if err != nil {
						// Failed writes record open-ended uncertainty the
						// checker must branch on; don't pile them up while
						// the chain is down.
						time.Sleep(15 * time.Millisecond)
					}
				} else {
					ref := rec.BeginRead(w, k)
					v, ok, err := cli.Get("", []byte(k))
					rec.EndRead(ref, string(v), ok, err)
				}
				time.Sleep(6 * time.Millisecond)
			}
		}(w, cli)
	}

	// Crash the head mid-workload; failover promotes the next replica, the
	// reboot rejoins as tail.
	time.Sleep(300 * time.Millisecond)
	head := c.Shards[0][0].Node.ID
	if err := c.Crash(0, 0); err != nil {
		t.Fatal(err)
	}
	waitEvicted(t, c, head)
	res := restartEventually(t, c, 0, 0)
	t.Logf("head %s rejoined (%d records, delta=%v)", head, res.Pairs, res.Delta)

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	rep := histcheck.Check(rec.Ops(), histcheck.Options{MaxStates: 1_000_000})
	t.Logf("history: %d ops recorded; %s", len(rec.Ops()), rep)
	for _, kr := range rep.Keys {
		switch kr.Outcome {
		case histcheck.NonLinearizable:
			t.Fatalf("seed %d: crash-restart broke linearizability: %s", seed, rep)
		case histcheck.Unknown:
			t.Logf("seed %d: key %q verdict unknown (%d ops, budget exhausted)", seed, kr.Key, kr.Ops)
		}
	}
}
