package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bespokv/internal/client"
	"bespokv/internal/faultnet"
	"bespokv/internal/histcheck"
	"bespokv/internal/metrics"
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

// Wire-speed read suite: leased direct datalet reads, shard-coalesced
// multi-get/multi-put, and hedged requests (ISSUE 6).

func counterValue(name string) int64 {
	return metrics.Default.Counter(name).Value()
}

// TestDirectReadWrongEpochFallback pins a client to a stale map (watch
// disabled) and bumps the cluster epoch under it: its next direct read must
// be refused by the datalet's epoch fence (StatusWrongEpoch), fall back
// through the controlet transparently, and still return the right value.
func TestDirectReadWrongEpochFallback(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          1,
		Replicas:        3,
		DisableFailover: true,
		// A roomy lease so the staleness window below is about epochs,
		// not about the TTL expiring mid-test.
		HeartbeatTimeout: 10 * time.Second,
	})
	cli, err := c.ClientConfig(client.Config{DirectReads: true, DisableWatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Put("", []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Sanity: with a live lease and a current map, strong reads go
	// straight to the tail datalet.
	direct0 := counterValue("bespokv_client_direct_reads_total")
	v, ok, err := cli.Get("", []byte("k"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("direct read: %q %v %v", v, ok, err)
	}
	if d := counterValue("bespokv_client_direct_reads_total") - direct0; d != 1 {
		t.Fatalf("expected 1 direct read, counter moved by %d", d)
	}
	staleEpoch := cli.Map().Epoch

	// Bump the epoch behind the client's back (same shards, new map
	// version — what any failover/transition/migration cutover does).
	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	m, err := admin.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := admin.SetMap(m); err != nil {
		t.Fatal(err)
	}
	// Wait until every replica's datalet has been granted the new epoch.
	eventually(t, 5*time.Second, func() string {
		for ri := 0; ri < 3; ri++ {
			ep, live := c.Pair(0, ri).Datalet.LeaseEpoch()
			if !live || ep <= staleEpoch {
				return fmt.Sprintf("replica %d datalet still at epoch %d", ri, ep)
			}
		}
		return ""
	})

	// The client's map is still stale: the direct read must be fenced and
	// fall back, not serve (and certainly not fail).
	fallback0 := counterValue("bespokv_client_direct_fallbacks_total")
	v, ok, err = cli.Get("", []byte("k"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("fenced read fell over instead of falling back: %q %v %v", v, ok, err)
	}
	if d := counterValue("bespokv_client_direct_fallbacks_total") - fallback0; d < 1 {
		t.Fatalf("expected a direct-read fallback, counter moved by %d", d)
	}

	// The WrongEpoch triggered a background refresh; once the client has
	// the new map, direct reads resume against the new epoch.
	eventually(t, 5*time.Second, func() string {
		if cli.Map().Epoch <= staleEpoch {
			return "client map still stale"
		}
		return ""
	})
	direct1 := counterValue("bespokv_client_direct_reads_total")
	v, ok, err = cli.Get("", []byte("k"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("post-refresh read: %q %v %v", v, ok, err)
	}
	if d := counterValue("bespokv_client_direct_reads_total") - direct1; d != 1 {
		t.Fatalf("direct reads did not resume after refresh, counter moved by %d", d)
	}
}

// TestHotKeyShadowInvalidatedOnEpochBump: a map change must invalidate the
// client's hot-key shadow copies — after the bump, reads must come from the
// primary (which another client updated) and never from the stale shadow.
func TestHotKeyShadowInvalidatedOnEpochBump(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Eventual},
		Shards:          2,
		Replicas:        1,
		DisableFailover: true,
	})
	hot, err := c.ClientConfig(client.Config{HotKeyThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer hot.Close()
	plain, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	key := []byte("celebrity")
	// Make the key hot and give it a fresh shadow copy at v1.
	for i := 0; i < 4; i++ {
		if err := hot.Put("", key, []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	// Another client (no hot-key tracking) moves the primary to v2; the
	// shadow still holds v1.
	if err := plain.Put("", key, []byte("v2")); err != nil {
		t.Fatal(err)
	}

	// Map change: epoch bump, as any failover/migration cutover causes.
	admin, err := c.Admin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	m, err := admin.GetMap()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := admin.SetMap(m); err != nil {
		t.Fatal(err)
	}
	bumped := m.Epoch
	eventually(t, 5*time.Second, func() string {
		if hot.Map().Epoch <= bumped {
			return "hot client has not observed the epoch bump"
		}
		return ""
	})

	// Every read must now see v2: the coin-flip shadow path is disabled
	// until this client re-establishes the shadow with a fresh write.
	// (Without invalidation, ~half of these reads would return v1.)
	for i := 0; i < 30; i++ {
		v, ok, err := hot.Get("", key)
		if err != nil || !ok {
			t.Fatalf("read %d: %v %v", i, ok, err)
		}
		if string(v) != "v2" {
			t.Fatalf("read %d returned stale shadow value %q after epoch bump", i, v)
		}
	}
}

// TestMultiGetMultiPutAllModes round-trips a batch through every mode:
// coalesced writes land, coalesced reads see them (eventually, under EC),
// and absent keys report NotFound per key rather than failing the batch.
func TestMultiGetMultiPutAllModes(t *testing.T) {
	for _, mode := range allModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			c := startCluster(t, Options{Mode: mode, Shards: 2, Replicas: 2, DisableFailover: true})
			cli, err := c.Client()
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()

			const n = 40
			pairs := make([]wire.KV, n)
			keys := make([][]byte, 0, n+2)
			for i := range pairs {
				pairs[i] = wire.KV{
					Key:   []byte(fmt.Sprintf("mk%03d", i)),
					Value: []byte(fmt.Sprintf("mv%03d", i)),
				}
				keys = append(keys, pairs[i].Key)
			}
			keys = append(keys, []byte("absent-a"), []byte("absent-b"))

			errs, err := cli.MultiPut("", pairs)
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range errs {
				if e != nil {
					t.Fatalf("pair %d: %v", i, e)
				}
			}

			// EC modes guarantee convergence, not read-your-writes from an
			// arbitrary replica; poll until the whole batch is visible.
			eventually(t, 10*time.Second, func() string {
				res, err := cli.MultiGet("", keys)
				if err != nil {
					return err.Error()
				}
				for i := 0; i < n; i++ {
					if res[i].Err != nil {
						return fmt.Sprintf("key %d: %v", i, res[i].Err)
					}
					if !res[i].Found || string(res[i].Value) != string(pairs[i].Value) {
						return fmt.Sprintf("key %d: found=%v value=%q", i, res[i].Found, res[i].Value)
					}
				}
				for i := n; i < len(keys); i++ {
					if res[i].Found || res[i].Err != nil {
						return fmt.Sprintf("absent key %d: found=%v err=%v", i, res[i].Found, res[i].Err)
					}
				}
				return ""
			})
		})
	}
}

// TestMultiPutPartialFailure kills one shard and batches across both: the
// dead shard's keys must come back with per-key errors while the healthy
// shard's writes land — a batch is not a transaction.
func TestMultiPutPartialFailure(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          2,
		Replicas:        1,
		DisableFailover: true,
	})
	cli, err := c.ClientConfig(client.Config{
		Retries:      2,
		RetryBackoff: 2 * time.Millisecond,
		OpTimeout:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Sort keys into shards under the live map so the batch provably
	// spans both.
	m := cli.Map()
	ring := topology.BuildRing(m)
	var pairs []wire.KV
	var wantShard []int
	perShard := map[int]int{}
	for i := 0; len(pairs) < 24; i++ {
		k := []byte(fmt.Sprintf("pf%03d", i))
		si := m.ShardFor(k, ring)
		if perShard[si] >= 12 {
			continue
		}
		perShard[si]++
		pairs = append(pairs, wire.KV{Key: k, Value: []byte(fmt.Sprintf("pv%03d", i))})
		wantShard = append(wantShard, si)
	}
	if perShard[0] == 0 || perShard[1] == 0 {
		t.Fatalf("keys did not span both shards: %v", perShard)
	}

	c.KillNode(1, 0) // shard 1 has one replica; it is now fully down

	errs, err := cli.MultiPut("", pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if wantShard[i] == 1 && e == nil {
			t.Fatalf("pair %d (dead shard) reported success", i)
		}
		if wantShard[i] == 0 && e != nil {
			t.Fatalf("pair %d (healthy shard) failed: %v", i, e)
		}
	}

	// The healthy shard's writes must be durable and readable.
	var liveKeys [][]byte
	var liveVals [][]byte
	for i := range pairs {
		if wantShard[i] == 0 {
			liveKeys = append(liveKeys, pairs[i].Key)
			liveVals = append(liveVals, pairs[i].Value)
		}
	}
	res, err := cli.MultiGet("", liveKeys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Err != nil || !res[i].Found || string(res[i].Value) != string(liveVals[i]) {
			t.Fatalf("healthy key %d: %+v", i, res[i])
		}
	}
}

// TestHedgedReadsCutTailLatency injects a fixed delay on one replica's
// links: hedged eventual reads must route around it (tail far below the
// injected delay, hedge wins observed), and a budgeted client must not
// hedge more than its budget allows.
func TestHedgedReadsCutTailLatency(t *testing.T) {
	const injected = 80 * time.Millisecond
	c, f := startFaultCluster(t, 1, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Eventual},
		Shards:          1,
		Replicas:        3,
		DisableFailover: true,
	})
	cli, err := c.ClientConfig(client.Config{
		DisableWatch:   true, // watch long-polls would skew nothing, but keep the run quiet
		HedgeAfter:     5 * time.Millisecond,
		HedgeBudgetPct: 100,
		OpTimeout:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Put("", []byte("hk"), []byte("hv")); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, 0, 1)

	// Slow every packet to and from one replica; the other two stay fast.
	slow := c.Pair(0, 2).Node.ID
	f.SetLink("client", slow, faultnet.Rule{Delay: injected})
	f.SetLink(slow, "client", faultnet.Rule{Delay: injected})

	const reads = 150
	hedged0 := counterValue("bespokv_client_hedged_reads_total")
	wins0 := counterValue("bespokv_client_hedge_wins_total")
	lat := make([]time.Duration, 0, reads)
	for i := 0; i < reads; i++ {
		start := time.Now()
		_, ok, err := cli.GetLevel("", []byte("hk"), wire.LevelEventual)
		if err != nil || !ok {
			t.Fatalf("read %d: %v %v", i, ok, err)
		}
		lat = append(lat, time.Since(start))
	}
	hedges := counterValue("bespokv_client_hedged_reads_total") - hedged0
	wins := counterValue("bespokv_client_hedge_wins_total") - wins0
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p95 := lat[len(lat)*95/100]
	t.Logf("hedges=%d wins=%d p50=%v p95=%v max=%v", hedges, wins, lat[len(lat)/2], p95, lat[len(lat)-1])
	if wins == 0 {
		t.Fatal("no hedge ever won; the slow replica was never routed around")
	}
	// ~1/3 of picks hit the slow replica; every one must be rescued well
	// under the injected delay (hedge fires at ~5ms, fast replica answers
	// in microseconds).
	if p95 >= injected {
		t.Fatalf("p95 %v did not beat the injected %v delay", p95, injected)
	}

	// Budget: a 10%-budget client against the same slow replica may hedge
	// at most pct*reads/100 plus the banked burst.
	budgeted, err := c.ClientConfig(client.Config{
		DisableWatch:   true,
		HedgeAfter:     5 * time.Millisecond,
		HedgeBudgetPct: 10,
		OpTimeout:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer budgeted.Close()
	hedged1 := counterValue("bespokv_client_hedged_reads_total")
	for i := 0; i < reads; i++ {
		if _, _, err := budgeted.GetLevel("", []byte("hk"), wire.LevelEventual); err != nil {
			t.Fatalf("budgeted read %d: %v", i, err)
		}
	}
	budgetHedges := counterValue("bespokv_client_hedged_reads_total") - hedged1
	maxAllowed := int64(reads*10/100 + 10 + 1) // budget + banked burst + the startup token
	t.Logf("budgeted client hedged %d of %d reads (cap %d)", budgetHedges, reads, maxAllowed)
	if budgetHedges > maxAllowed {
		t.Fatalf("budget exceeded: %d hedges > %d allowed", budgetHedges, maxAllowed)
	}
}

// TestMSSCLinearizableWithDirectReads runs concurrent writers and direct-
// reading readers against MS+SC and checks the recorded per-key history for
// linearizability: a tail datalet read under an epoch lease must be
// indistinguishable from a controlet tail read.
func TestMSSCLinearizableWithDirectReads(t *testing.T) {
	c := startCluster(t, Options{
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Shards:          1,
		Replicas:        3,
		DisableFailover: true,
	})
	keys := []string{"k0", "k1", "k2", "k3"}
	rec := histcheck.NewRecorder()
	var vals atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	directBefore := counterValue("bespokv_client_direct_reads_total")
	for w := 0; w < 6; w++ {
		cli, err := c.ClientConfig(client.Config{DirectReads: true, Retries: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		wg.Add(1)
		go func(w int, cli *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[rng.Intn(len(keys))]
				if rng.Intn(2) == 0 {
					v := fmt.Sprint(vals.Add(1))
					ref := rec.BeginWrite(w, k, v)
					err := cli.Put("", []byte(k), []byte(v))
					rec.EndWrite(ref, err)
				} else {
					ref := rec.BeginRead(w, k)
					v, ok, err := cli.Get("", []byte(k))
					rec.EndRead(ref, string(v), ok, err)
				}
				time.Sleep(time.Millisecond)
			}
		}(w, cli)
	}
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	if d := counterValue("bespokv_client_direct_reads_total") - directBefore; d == 0 {
		t.Fatal("no read ever took the direct path; the test exercised nothing")
	}
	ops := rec.Ops()
	rep := histcheck.Check(ops, histcheck.Options{MaxStates: 5_000_000})
	t.Logf("history: %d ops; %s", len(ops), rep)
	if !rep.Ok() {
		t.Fatalf("history with direct reads not linearizable: %s", rep)
	}
}
