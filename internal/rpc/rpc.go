// Package rpc is a minimal JSON-RPC layer over the transport abstraction,
// used on the control path (coordinator, distributed lock manager, shared
// log). The hot data path uses internal/wire instead; control traffic is
// low-rate, so readability and evolvability win over compactness here.
//
// Framing: 4-byte little-endian length followed by a JSON object.
// Requests: {"id":n,"m":"Method","a":<args>}; responses:
// {"id":n,"r":<result>} or {"id":n,"e":"message"}. Multiple calls may be in
// flight concurrently on one connection; responses match by id.
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"bespokv/internal/metrics"
	"bespokv/internal/trace"
	"bespokv/internal/transport"
)

const maxFrame = 16 << 20

// DefaultCallTimeout bounds Client.Call when Client.CallTimeout is unset.
// A response that never comes (server wedged, frame lost to a half-open
// connection) must fail the call, not hang it forever. The longest
// legitimate waits in-tree are the ~2s watch long-polls and DLM lock waits,
// so 10s is comfortably above any honest response time.
const DefaultCallTimeout = 10 * time.Second

// ErrCallTimeout is returned when a call's response did not arrive in time.
var ErrCallTimeout = errors.New("rpc: call timed out")

type reqMsg struct {
	ID     uint64          `json:"id"`
	Method string          `json:"m"`
	Args   json.RawMessage `json:"a,omitempty"`
	// T is the trace ID of a sampled request, 0 when untraced. Old peers
	// ignore the unknown field; its absence unmarshals as 0 — compatible
	// in both directions.
	T uint64 `json:"t,omitempty"`
	// D is the caller's remaining deadline budget in nanoseconds, 0 when
	// unbounded. A server that dispatches the call only after the budget
	// is spent answers "rpc: deadline expired" instead of burning a
	// handler on work the caller has already timed out — which matters
	// exactly when the control plane is overloaded and dispatch delays
	// grow. Same old/new compatibility story as T.
	D uint64 `json:"d,omitempty"`
}

// ErrDeadlineExpired is the server-side reply for a call whose budget was
// spent before its handler ran.
const errDeadlineExpired = "rpc: deadline expired"

type respMsg struct {
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"r,omitempty"`
	Err    string          `json:"e,omitempty"`
}

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return errors.New("rpc: frame too large")
	}
	// Header and payload go down in ONE Write: transports that treat each
	// Write as a message quantum (the faultnet fault plane drops/duplicates
	// whole Writes) must see frames, never torn header/payload halves.
	buf := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, errors.New("rpc: frame too large")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Handler processes one call. args is the raw JSON argument; the returned
// value is marshaled as the result.
type Handler func(args json.RawMessage) (any, error)

// Server dispatches calls to registered handlers.
type Server struct {
	// Name identifies this server in trace spans (e.g. "coordinator",
	// "dlm"); set it before Serve. Empty renders as "rpc".
	Name string

	mu       sync.RWMutex
	handlers map[string]Handler
	listener transport.Listener
	conns    sync.WaitGroup
	active   map[transport.Conn]struct{}
	closed   bool
}

func (s *Server) traceName() string {
	if s.Name != "" {
		return s.Name
	}
	return "rpc"
}

// NewServer returns a server with no handlers bound.
func NewServer() *Server {
	return &Server{
		handlers: map[string]Handler{},
		active:   map[transport.Conn]struct{}{},
	}
}

// Handle registers fn under method; it panics on duplicates (init-time bug).
func (s *Server) Handle(method string, fn Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic("rpc: duplicate method " + method)
	}
	s.handlers[method] = fn
}

// HandleFunc registers a typed handler: fn's argument is unmarshaled from
// the request JSON.
func HandleFunc[A any, R any](s *Server, method string, fn func(A) (R, error)) {
	s.Handle(method, func(raw json.RawMessage) (any, error) {
		var args A
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &args); err != nil {
				return nil, fmt.Errorf("rpc: bad args for %s: %w", method, err)
			}
		}
		return fn(args)
	})
}

// Serve starts listening on network/addr and returns immediately.
func (s *Server) Serve(network transport.Network, addr string) (string, error) {
	l, err := network.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go s.acceptLoop(l)
	return l.Addr(), nil
}

func (s *Server) acceptLoop(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.active[conn] = struct{}{}
		// Register with the WaitGroup while still holding mu: once Close
		// sets closed (under mu) it may already be in conns.Wait, and an
		// Add racing that Wait is a WaitGroup misuse.
		s.conns.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.conns.Done()
			defer func() {
				s.mu.Lock()
				delete(s.active, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn transport.Conn) {
	var writeMu sync.Mutex
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		var req reqMsg
		if err := json.Unmarshal(frame, &req); err != nil {
			return
		}
		recv := time.Now()
		s.mu.RLock()
		h, ok := s.handlers[req.Method]
		s.mu.RUnlock()
		// Dispatch concurrently so slow handlers (watch long-polls)
		// don't block the connection. Each dispatched handler holds a
		// WaitGroup slot so Close waits for it instead of racing its
		// teardown. (serveConn itself holds a slot, so this Add can
		// never race conns.Wait observing zero.)
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			var start time.Time
			if req.T != 0 {
				start = time.Now()
				defer func() {
					trace.Record(req.T, s.traceName(), "rpc."+req.Method, start, time.Since(start), "")
				}()
			}
			var resp respMsg
			resp.ID = req.ID
			if !ok {
				resp.Err = "rpc: unknown method " + req.Method
			} else if req.D != 0 && time.Since(recv) > time.Duration(req.D) {
				// The caller's budget ran out between receive and
				// dispatch (handler goroutines starved under load); the
				// caller has already timed out, so the work is doomed.
				rpcDeadlineExpired.Inc()
				resp.Err = errDeadlineExpired
			} else if result, err := h(req.Args); err != nil {
				resp.Err = err.Error()
			} else if result != nil {
				raw, err := json.Marshal(result)
				if err != nil {
					resp.Err = "rpc: marshal result: " + err.Error()
				} else {
					resp.Result = raw
				}
			}
			payload, err := json.Marshal(resp)
			if err != nil {
				return
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = writeFrame(conn, payload)
		}()
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.active {
		_ = c.Close()
	}
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.conns.Wait()
	return nil
}

// Client is a concurrent-safe RPC client over one connection.
type Client struct {
	conn    transport.Conn
	writeMu sync.Mutex

	// CallTimeout bounds each Call's wait for its response; zero or
	// negative disables the bound. Set before the first Call.
	CallTimeout time.Duration

	mu      sync.Mutex
	pending map[uint64]chan respMsg
	nextID  uint64
	err     error
}

// DialClient connects to an rpc.Server with the default call timeout.
func DialClient(network transport.Network, addr string) (*Client, error) {
	conn, err := network.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:        conn,
		CallTimeout: DefaultCallTimeout,
		pending:     map[uint64]chan respMsg{},
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		frame, err := readFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		var resp respMsg
		if err := json.Unmarshal(frame, &resp); err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- respMsg{Err: "rpc: connection failed: " + err.Error()}
	}
}

// Call metrics: control-path RPCs are low-rate, so the per-call labeled
// registry lookup (one small allocation) is acceptable here, unlike on the
// wire data path.
var (
	rpcCallSeconds = metrics.Default.Histogram("bespokv_rpc_call_seconds")
	rpcTimeouts    = metrics.Default.Counter("bespokv_rpc_call_timeouts_total")

	// Calls whose propagated budget was spent before dispatch (see reqMsg.D).
	rpcDeadlineExpired = metrics.Default.Counter("bespokv_deadline_expired_total", "layer", "rpc")
)

// Call invokes method with args, unmarshaling the result into reply
// (which may be nil to discard it). It waits at most c.CallTimeout.
func (c *Client) Call(method string, args any, reply any) error {
	return c.call(0, method, args, reply, c.CallTimeout)
}

// CallTraced is Call carrying the trace ID of a sampled request; the
// server records an "rpc.<method>" span for it.
func (c *Client) CallTraced(tid uint64, method string, args, reply any) error {
	return c.call(tid, method, args, reply, c.CallTimeout)
}

// CallTimeoutEx is Call with an explicit response deadline, for the few
// long-poll-style methods (e.g. DLM lock waits) whose honest response time
// a caller knows can exceed the connection's default. timeout <= 0 waits
// forever.
func (c *Client) CallTimeoutEx(method string, args, reply any, timeout time.Duration) error {
	return c.call(0, method, args, reply, timeout)
}

// CallTimeoutTraced is CallTimeoutEx carrying a trace ID.
func (c *Client) CallTimeoutTraced(tid uint64, method string, args, reply any, timeout time.Duration) error {
	return c.call(tid, method, args, reply, timeout)
}

func (c *Client) call(tid uint64, method string, args, reply any, timeout time.Duration) (err error) {
	start := time.Now()
	defer func() {
		rpcCallSeconds.Observe(time.Since(start))
		metrics.Default.Counter("bespokv_rpc_calls_total", "method", method).Inc()
		if err != nil {
			metrics.Default.Counter("bespokv_rpc_call_errors_total", "method", method).Inc()
			if errors.Is(err, ErrCallTimeout) {
				rpcTimeouts.Inc()
			}
		}
	}()
	var rawArgs json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return err
		}
		rawArgs = b
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan respMsg, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	// The call timeout doubles as the propagated deadline budget: a server
	// too backlogged to dispatch before it lapses answers cheaply instead
	// of running a handler nobody is waiting for.
	var budget uint64
	if timeout > 0 {
		budget = uint64(timeout)
	}
	payload, err := json.Marshal(reqMsg{ID: id, Method: method, Args: rawArgs, T: tid, D: budget})
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	err = writeFrame(c.conn, payload)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}
	var resp respMsg
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case resp = <-ch:
		case <-timer.C:
			// Forget the call so a late response is discarded; the
			// pending channel is buffered, so even a response racing
			// this delete cannot block the read loop.
			c.mu.Lock()
			delete(c.pending, id)
			c.mu.Unlock()
			return fmt.Errorf("%w: %s after %v", ErrCallTimeout, method, timeout)
		}
	} else {
		resp = <-ch
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	if reply != nil && len(resp.Result) > 0 {
		return json.Unmarshal(resp.Result, reply)
	}
	return nil
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error {
	return c.conn.Close()
}
