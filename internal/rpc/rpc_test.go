package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bespokv/internal/trace"
	"bespokv/internal/transport"
)

type addArgs struct{ A, B int }

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	net, err := transport.Lookup("inproc")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	HandleFunc(s, "Add", func(a addArgs) (int, error) { return a.A + a.B, nil })
	HandleFunc(s, "Fail", func(struct{}) (int, error) { return 0, errors.New("boom") })
	HandleFunc(s, "Slow", func(d int) (int, error) {
		time.Sleep(time.Duration(d) * time.Millisecond)
		return d, nil
	})
	addr, err := s.Serve(net, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := DialClient(net, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestCall(t *testing.T) {
	_, c := newPair(t)
	var sum int
	if err := c.Call("Add", addArgs{2, 3}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 5 {
		t.Fatalf("sum=%d", sum)
	}
}

func TestCallError(t *testing.T) {
	_, c := newPair(t)
	err := c.Call("Fail", struct{}{}, nil)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("got %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, c := newPair(t)
	if err := c.Call("Nope", nil, nil); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestConcurrentCallsInterleave(t *testing.T) {
	_, c := newPair(t)
	var wg sync.WaitGroup
	start := time.Now()
	errs := make(chan error, 2)
	wg.Add(2)
	go func() { // slow call first
		defer wg.Done()
		var got int
		errs <- c.Call("Slow", 200, &got)
	}()
	time.Sleep(10 * time.Millisecond)
	var fastDone time.Duration
	go func() { // fast call second must not wait for the slow one
		defer wg.Done()
		var sum int
		errs <- c.Call("Add", addArgs{1, 1}, &sum)
		fastDone = time.Since(start)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if fastDone > 150*time.Millisecond {
		t.Fatalf("fast call blocked behind slow one: %v", fastDone)
	}
}

func TestManyConcurrentClients(t *testing.T) {
	s, _ := newPair(t)
	net, _ := transport.Lookup("inproc")
	addr := s.listener.Addr()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := DialClient(net, addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < 100; i++ {
				var sum int
				if err := c.Call("Add", addArgs{w, i}, &sum); err != nil {
					errCh <- err
					return
				}
				if sum != w+i {
					errCh <- fmt.Errorf("w%d: sum=%d", w, sum)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestInFlightCallsFailOnClose(t *testing.T) {
	s, c := newPair(t)
	done := make(chan error, 1)
	go func() {
		done <- c.Call("Slow", 5000, nil)
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call must fail when server dies")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after server close")
	}
}

func TestCallAfterClientClose(t *testing.T) {
	_, c := newPair(t)
	c.Close()
	time.Sleep(10 * time.Millisecond)
	if err := c.Call("Add", addArgs{1, 1}, nil); err == nil {
		t.Fatal("call after close must fail")
	}
}

func TestRawHandler(t *testing.T) {
	net, _ := transport.Lookup("inproc")
	s := NewServer()
	s.Handle("Echo", func(raw json.RawMessage) (any, error) {
		return json.RawMessage(raw), nil
	})
	addr, err := s.Serve(net, "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialClient(net, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out map[string]int
	if err := c.Call("Echo", map[string]int{"x": 7}, &out); err != nil {
		t.Fatal(err)
	}
	if out["x"] != 7 {
		t.Fatalf("echo lost data: %v", out)
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	s := NewServer()
	s.Handle("M", func(json.RawMessage) (any, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate handler must panic")
		}
	}()
	s.Handle("M", func(json.RawMessage) (any, error) { return nil, nil })
}

func TestCallTimeout(t *testing.T) {
	_, c := newPair(t)
	c.CallTimeout = 50 * time.Millisecond
	var out int
	start := time.Now()
	err := c.Call("Slow", 5_000, &out)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("want ErrCallTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The connection survives a timed-out call; later calls still work,
	// and the abandoned call's late response is discarded silently.
	c.CallTimeout = DefaultCallTimeout
	if err := c.Call("Add", addArgs{A: 2, B: 3}, &out); err != nil || out != 5 {
		t.Fatalf("call after timeout: %v out=%d", err, out)
	}
}

func TestCallTimeoutEx(t *testing.T) {
	_, c := newPair(t)
	c.CallTimeout = 50 * time.Millisecond
	var out int
	// An explicit longer deadline overrides the connection default.
	if err := c.CallTimeoutEx("Slow", 200, &out, 5*time.Second); err != nil || out != 200 {
		t.Fatalf("CallTimeoutEx: %v out=%d", err, out)
	}
}

// TestCloseWaitsForHandlers drives Close concurrently with slow in-flight
// handlers; under -race this fails if Close races dispatched handler
// goroutines instead of waiting for them.
func TestCloseWaitsForHandlers(t *testing.T) {
	s, c := newPair(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out int
			_ = c.Call("Slow", 50, &out)
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestCallTracedRecordsServerSpan(t *testing.T) {
	s, c := newPair(t)
	s.Name = "testsvc"
	rec := trace.Default
	before := rec.Total()
	var sum int
	if err := c.CallTraced(0xabc123, "Add", addArgs{A: 2, B: 3}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 5 {
		t.Fatalf("sum=%d", sum)
	}
	// The server records its span after writing the response, so poll.
	deadline := time.Now().Add(2 * time.Second)
	for rec.Total() == before {
		if time.Now().After(deadline) {
			t.Fatal("no span recorded for traced call")
		}
		time.Sleep(time.Millisecond)
	}
	var found bool
	for _, tr := range rec.Traces(0) {
		if tr.ID != 0xabc123 {
			continue
		}
		for _, sp := range tr.Spans {
			if sp.Node == "testsvc" && sp.Stage == "rpc.Add" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("span for rpc.Add on node testsvc not found")
	}

	// Untraced calls must record nothing.
	mid := rec.Total()
	if err := c.Call("Add", addArgs{A: 1, B: 1}, &sum); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if rec.Total() != mid {
		t.Fatal("untraced call recorded a span")
	}
}
