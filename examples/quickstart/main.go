// Quickstart: deploy a complete bespokv cluster in-process — coordinator,
// DLM, shared log, one shard of three controlet+datalet pairs running
// chain replication (MS+SC) — and use the client API from Table II of the
// paper: CreateTable, Put, Get, Del, range queries, per-request
// consistency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bespokv/internal/cluster"
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

func main() {
	// A 3-replica MS+SC shard over the ordered B+-tree engine so range
	// queries work too. NetworkName "inproc" keeps everything in this
	// process; "tcp" deploys over loopback sockets.
	c, err := cluster.Start(cluster.Options{
		Shards:      1,
		Replicas:    3,
		Mode:        topology.Mode{Topology: topology.MS, Consistency: topology.Strong},
		Engine:      "btree",
		Partitioner: topology.RangePartitioner,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	cli, err := c.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Tables namespace keys (Table II: CreateTable / DeleteTable).
	if err := cli.CreateTable("inventory"); err != nil {
		log.Fatal(err)
	}

	// Writes go to the chain head and are acknowledged only after the
	// tail applied them — strong consistency.
	fruit := map[string]string{"apple": "170g", "banana": "120g", "cherry": "8g", "durian": "1500g"}
	for k, v := range fruit {
		if err := cli.Put("inventory", []byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("wrote", len(fruit), "pairs through the chain head")

	// Strong reads come from the chain tail.
	v, ok, err := cli.Get("inventory", []byte("banana"))
	if err != nil || !ok {
		log.Fatalf("get: %v (found=%v)", err, ok)
	}
	fmt.Printf("strong read: banana = %s\n", v)

	// Per-request consistency (§IV-C): this read may be served by any
	// replica; under MS+SC they are all equally fresh anyway.
	v, _, err = cli.GetLevel("inventory", []byte("cherry"), wire.LevelEventual)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eventual read: cherry = %s\n", v)

	// Range query (§IV-B): ordered engines + range partitioning.
	kvs, err := cli.GetRange("inventory", []byte("apple"), []byte("d"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("range [apple, d):")
	for _, kv := range kvs {
		fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
	}

	// Delete and confirm.
	if _, err := cli.Del("inventory", []byte("durian")); err != nil {
		log.Fatal(err)
	}
	if _, ok, _ := cli.Get("inventory", []byte("durian")); ok {
		log.Fatal("durian survived deletion")
	}
	fmt.Println("durian deleted; quickstart complete")
}
