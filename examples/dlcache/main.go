// Deep-learning ingestion cache (§VI-B): training epochs re-read the same
// massive set of small files every pass, which parallel file systems
// serve poorly. bespokv acts as a distributed cache in front of the PFS:
// the first epoch populates it, later epochs stream from memory. The
// paper measured 4× (40 vs 10 images/s) on real hardware; here the PFS is
// simulated with a per-file latency penalty, so the point is the shape —
// a multiple-fold speedup for every epoch after the first.
//
//	go run ./examples/dlcache
package main

import (
	"fmt"
	"log"
	"time"

	"bespokv/internal/cluster"
	"bespokv/internal/topology"
	"bespokv/internal/workload"
)

const (
	images     = 2000
	imageBytes = 4 << 10
	epochs     = 3
	// pfsLatency models the metadata+seek cost of one small-file read on
	// a parallel file system.
	pfsLatency = 150 * time.Microsecond
)

func readFromPFS() []byte {
	time.Sleep(pfsLatency)
	return make([]byte, imageBytes)
}

func main() {
	c, err := cluster.Start(cluster.Options{
		Shards:          2,
		Replicas:        3,
		Mode:            topology.Mode{Topology: topology.MS, Consistency: topology.Eventual},
		DisableFailover: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cache, err := c.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	fmt.Printf("training set: %d images × %d KiB, %d epochs\n", images, imageBytes/1024, epochs)

	var baseline float64
	for epoch := 1; epoch <= epochs; epoch++ {
		start := time.Now()
		hits := 0
		for i := 0; i < images; i++ {
			key := workload.Key(16, i)
			if img, ok, _ := cache.Get("", key); ok && len(img) == imageBytes {
				hits++
				continue
			}
			img := readFromPFS()
			if err := cache.Put("", key, img); err != nil {
				log.Fatal(err)
			}
		}
		rate := float64(images) / time.Since(start).Seconds()
		if epoch == 1 {
			baseline = rate
			fmt.Printf("epoch %d: %7.0f images/s (cold, %4d cache hits) — PFS-bound\n", epoch, rate, hits)
			continue
		}
		fmt.Printf("epoch %d: %7.0f images/s (warm, %4d cache hits) — %.1fx over cold\n",
			epoch, rate, hits, rate/baseline)
	}
}
