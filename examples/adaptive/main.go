// Adaptive topology/consistency (§V, Fig. 10): a metadata service starts
// on one cluster with a simple master-slave topology, then — as the
// workload "spreads across sites" — switches live to active-active, with
// requests flowing throughout. Data never moves; only controlets change.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"bespokv/internal/cluster"
	"bespokv/internal/topology"
)

func main() {
	msEC := topology.Mode{Topology: topology.MS, Consistency: topology.Eventual}
	aaEC := topology.Mode{Topology: topology.AA, Consistency: topology.Eventual}
	msSC := topology.Mode{Topology: topology.MS, Consistency: topology.Strong}

	c, err := cluster.Start(cluster.Options{
		Shards:          2,
		Replicas:        3,
		Mode:            msEC,
		DisableFailover: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Println("cluster up: 2 shards × 3 replicas, mode", msEC)

	// A background workload that never stops: job-launch style metadata
	// updates and lookups.
	var ok, failed atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		go func(w int) {
			cli, err := c.Client()
			if err != nil {
				return
			}
			defer cli.Close()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("job/%d/%06d", w, i))
				if err := cli.Put("", key, []byte("node-list=...")); err != nil {
					failed.Add(1)
				} else {
					ok.Add(1)
				}
				if _, _, err := cli.Get("", key); err == nil {
					ok.Add(1)
				}
				i++
			}
		}(w)
	}

	report := func(phase string) {
		fmt.Printf("  %-34s ops ok=%-8d failed=%d\n", phase, ok.Load(), failed.Load())
	}

	time.Sleep(700 * time.Millisecond)
	report("steady state under " + msEC.String())

	fmt.Println("→ switching to", aaEC, "live (multi-site job launch)")
	if err := c.Transition(aaEC); err != nil {
		log.Fatal(err)
	}
	time.Sleep(700 * time.Millisecond)
	report("after transition to " + aaEC.String())

	fmt.Println("→ switching to", msSC, "live (strict accounting window)")
	if err := c.Transition(msSC); err != nil {
		log.Fatal(err)
	}
	time.Sleep(700 * time.Millisecond)
	report("after transition to " + msSC.String())

	close(stop)
	time.Sleep(50 * time.Millisecond)

	total := ok.Load() + failed.Load()
	fmt.Printf("total: %d operations, %.2f%% failed transiently during switches\n",
		total, 100*float64(failed.Load())/float64(total))
	fmt.Println("both transitions completed with the service online; no data migrated")
}
