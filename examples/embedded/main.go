// Embedded bespokv: the one-handle API (internal/core) for applications
// that want "a datalet, scaled out" without assembling the pieces — the
// distilled form of the paper's pitch that developers "simply drop a
// datalet into bespokv and offload the messy plumbing of distributed
// systems support to the framework".
//
//	go run ./examples/embedded
package main

import (
	"fmt"
	"log"

	"bespokv/internal/core"
)

func main() {
	// One call: coordinator, DLM, shared log, 2 shards × 3 B+-tree
	// datalets with chain replication, range partitioning, and a spare
	// pair for automatic failover.
	svc, err := core.Launch(core.Options{
		Shards:           2,
		Replicas:         3,
		Engine:           "btree",
		Mode:             core.ModeMSStrong,
		RangePartitioned: true,
		Standbys:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Println("service up in mode", svc.Mode())

	// The Table II client API.
	if err := svc.CreateTable("sessions"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 26; i++ {
		k := []byte(fmt.Sprintf("%c-session", 'a'+i))
		if err := svc.Put("sessions", k, []byte(fmt.Sprintf("user-%02d", i))); err != nil {
			log.Fatal(err)
		}
	}
	v, ok, err := svc.Get("sessions", []byte("m-session"))
	if err != nil || !ok {
		log.Fatalf("get: %v (found=%v)", err, ok)
	}
	fmt.Printf("strong read: m-session = %s\n", v)

	// Per-request consistency and range queries.
	if _, _, err := svc.GetLevel("sessions", []byte("m-session"), core.LevelEventual); err != nil {
		log.Fatal(err)
	}
	kvs, err := svc.GetRange("sessions", []byte("j"), []byte("p"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [j,p): %d sessions\n", len(kvs))

	// Live mode switch — the framework's signature move.
	if err := svc.Transition(core.ModeAAEventual); err != nil {
		log.Fatal(err)
	}
	fmt.Println("switched live to", svc.Mode(), "— no downtime, no data migration")
	if err := svc.Put("sessions", []byte("post-switch"), []byte("ok")); err != nil {
		log.Fatal(err)
	}

	// Chaos: kill a replica; the coordinator repairs around it and the
	// standby recovers the data.
	svc.Cluster().KillNode(0, 1)
	if err := svc.Put("sessions", []byte("post-kill"), []byte("ok")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("survived a replica kill; service still writable")
}
