// HPC monitoring (§VI-A, Figs. 5–6): one bespokv deployment unifies three
// data abstractions behind one namespace. A Lustre-style monitoring
// pipeline streams put-heavy time-series samples while an I/O load-
// balancing analytics model issues read-heavy queries against the same
// data — each replica of the shard runs the engine that suits one side:
//
//	replica 0 (master): LSM-tree — absorbs the write stream (no in-place
//	                    updates, sequential flushes);
//	replica 1:          B+-tree  — serves the read-heavy analytics;
//	replica 2:          applog   — append-only persistent history.
//
// Replication is MS+EC: the master acknowledges immediately and
// propagates to the other abstractions asynchronously, exactly Fig. 5.
//
//	go run ./examples/hpcmonitoring
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"bespokv/internal/cluster"
	"bespokv/internal/topology"
	"bespokv/internal/wire"
)

func main() {
	c, err := cluster.Start(cluster.Options{
		Shards:           1,
		Replicas:         3,
		Mode:             topology.Mode{Topology: topology.MS, Consistency: topology.Eventual},
		EnginesByReplica: []string{"lsm", "btree", "applog"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	fmt.Println("polyglot shard:")
	for ri, p := range c.Shards[0] {
		role := []string{"master (ingest)", "slave (analytics)", "slave (archive)"}[ri]
		fmt.Printf("  replica %d: %-7s %s\n", ri, p.Datalet.Engine("").Name(), role)
	}

	monitor, err := c.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer monitor.Close()
	analytics, err := c.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer analytics.Close()

	// Monitoring agents: OSS/MDS stats as KV time series, write-heavy.
	var samples atomic.Int64
	stop := make(chan struct{})
	go func() {
		servers := []string{"oss-0", "oss-1", "mds-0", "ost-3", "mdt-0"}
		seq := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("stats/%s/%010d", servers[seq%len(servers)], seq)
			val := fmt.Sprintf("iops=%d,bw=%dMBps,stripe=%d",
				rand.Intn(5000), rand.Intn(800), 1+rand.Intn(8))
			if err := monitor.Put("", []byte(key), []byte(val)); err == nil {
				samples.Add(1)
			}
			seq++
		}
	}()

	// Analytics model: read-heavy queries predicting I/O load, served with
	// eventual reads so they can hit the B+-tree replica.
	var queries atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := samples.Load()
			if n == 0 {
				time.Sleep(time.Millisecond)
				continue
			}
			servers := []string{"oss-0", "oss-1", "mds-0", "ost-3", "mdt-0"}
			key := fmt.Sprintf("stats/%s/%010d", servers[rand.Intn(5)], rand.Int63n(n))
			if _, _, err := analytics.GetLevel("", []byte(key), wire.LevelEventual); err == nil {
				queries.Add(1)
			}
		}
	}()

	time.Sleep(2 * time.Second)
	close(stop)
	time.Sleep(100 * time.Millisecond)

	fmt.Printf("ingested %d monitoring samples (%.0f samples/s into the LSM master)\n",
		samples.Load(), float64(samples.Load())/2)
	fmt.Printf("answered %d analytics queries (%.0f queries/s across replicas)\n",
		queries.Load(), float64(queries.Load())/2)

	// Show the asynchronous fan-out: all three abstractions converge on
	// the same sample count.
	deadline := time.Now().Add(10 * time.Second)
	for {
		a := c.Shards[0][0].Datalet.Engine("").Len()
		b := c.Shards[0][1].Datalet.Engine("").Len()
		l := c.Shards[0][2].Datalet.Engine("").Len()
		if a == b && b == l {
			fmt.Printf("replicas converged: lsm=%d btree=%d applog=%d samples\n", a, b, l)
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("replicas did not converge: lsm=%d btree=%d applog=%d", a, b, l)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
