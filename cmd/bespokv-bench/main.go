// Command bespokv-bench regenerates the paper's tables and figures. Each
// experiment deploys its own in-process cluster(s), drives them with the
// paper's workloads, and prints rows as "figure series x kqps [extras]".
//
//	bespokv-bench -exp all                # everything (takes a while)
//	bespokv-bench -exp fig7               # one experiment
//	bespokv-bench -exp fig12 -quick       # smoke-scale parameters
//	bespokv-bench -exp fig7 -measure 5s -clients 16 -nodes 3,6,12,24,48
//
// See DESIGN.md for the per-experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"bespokv/internal/bench"
	"bespokv/internal/obs"
)

var experiments = map[string]struct {
	fn    func(bench.Params) error
	about string
}{
	"table1":              {bench.Table1FeatureMatrix, "Table I: live-probed feature matrix"},
	"fig6":                {bench.Fig6DataAbstractions, "Fig. 6: LSM vs B+-tree vs log under monitoring/analytics"},
	"fig7":                {bench.Fig7ScalabilityHT, "Fig. 7: tHT scalability across modes, mixes, distributions"},
	"fig7-95get-multiget": {bench.Fig7MultiGet95, "Fig. 7 extension: single GETs vs direct-routed MultiGet at 64 callers"},
	"fig8":                {bench.Fig8HPCWorkloads, "Fig. 8: job-launch and I/O-forwarding HPC traces"},
	"fig9":                {bench.Fig9OtherDatalets, "Fig. 9: tSSDB/tLog/tMT datalets under MS+EC (incl. scans)"},
	"fig10":               {bench.Fig10Transitions, "Fig. 10: live MS+EC→{MS+SC,AA+EC,AA+SC} transition timelines"},
	"fig11":               {bench.Fig11ProxyComparison, "Fig. 11: bespokv+tRedis vs twemproxy vs dynomite"},
	"fig12":               {bench.Fig12NativeComparison, "Fig. 12: latency/throughput vs cassandra- and voldemort-style stores"},
	"fig16":               {bench.Fig16Failover, "Fig. 16: node-kill failover timelines"},
	"fig17":               {bench.Fig17TransportBypass, "Fig. 17: kernel sockets vs DPDK-style bypass transport"},
	"perreq":              {bench.PerRequestConsistency, "§VIII-D: per-request consistency levels"},
	"polyglot":            {bench.PolyglotPersistence, "§VIII-D: polyglot persistence (mixed engines per shard)"},
	"dlcache":             {bench.DLCache, "§VI-B: deep-learning ingestion cache vs simulated PFS"},
	"ablate":              {bench.Ablations, "design ablations: chain length, AA ordering, LSM write-amp, ring vnodes"},
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment to run (or 'all', 'list')")
		quick   = flag.Bool("quick", false, "smoke-scale parameters")
		measure = flag.Duration("measure", 0, "measurement window per data point")
		clients = flag.Int("clients", 0, "concurrent load clients")
		keys    = flag.Int("keys", 0, "keyspace size")
		preload = flag.Int("preload", -1, "keys preloaded before measuring")
		nodes   = flag.String("nodes", "", "comma-separated node-count sweep, e.g. 3,6,12,24")
		network = flag.String("network", "", "transport: inproc (default) or tcp")
		obsAddr = flag.String("obs-addr", "", "HTTP observability address (/metrics, /statusz, /tracez, pprof); empty disables")
	)
	flag.Parse()

	if *obsAddr != "" {
		o, err := obs.Start(*obsAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("observability on http://%s/\n", o.Addr())
		defer o.Close()
	}

	if *exp == "" || *exp == "list" {
		names := make([]string, 0, len(experiments))
		for name := range experiments {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("experiments:")
		for _, name := range names {
			fmt.Printf("  %-9s %s\n", name, experiments[name].about)
		}
		fmt.Println("  all       run everything")
		return
	}

	params := bench.Full(os.Stdout)
	if *quick {
		params = bench.Quick(os.Stdout)
	}
	if *measure > 0 {
		params.MeasureFor = *measure
	}
	if *clients > 0 {
		params.Clients = *clients
	}
	if *keys > 0 {
		params.Keys = *keys
	}
	if *preload >= 0 {
		params.Preload = *preload
	}
	if *network != "" {
		params.NetworkName = *network
	}
	if *nodes != "" {
		params.NodeCounts = nil
		for _, part := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad -nodes entry %q\n", part)
				os.Exit(2)
			}
			params.NodeCounts = append(params.NodeCounts, n)
		}
	}

	var names []string
	if *exp == "all" {
		for name := range experiments {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := experiments[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -exp list)\n", name)
				os.Exit(2)
			}
			names = append(names, name)
		}
	}

	for _, name := range names {
		e := experiments[name]
		fmt.Printf("== %s — %s\n", name, e.about)
		start := time.Now()
		if err := e.fn(params); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
