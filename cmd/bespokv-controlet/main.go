// Command bespokv-controlet runs one control-plane proxy in front of one
// datalet, turning it into a member of a scalable, fault-tolerant
// distributed KV store. Configuration follows the paper's artifact: a JSON
// file with the deployment parameters.
//
//	bespokv-controlet -config c0.json
//
// Example config:
//
//	{
//	  "node_id":     "s0-r0",
//	  "shard_id":    "shard-0",
//	  "data_addr":   "127.0.0.1:7201",
//	  "ctl_addr":    "127.0.0.1:7301",
//	  "datalet":     "127.0.0.1:7101",
//	  "datalet_codec": "binary",
//	  "topology":    "ms",
//	  "consistency": "strong",
//	  "coordinator": "127.0.0.1:7000",
//	  "dlm":         "127.0.0.1:7001",
//	  "sharedlog":   "127.0.0.1:7002"
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"bespokv/internal/controlet"
	"bespokv/internal/obs"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

type fileConfig struct {
	NodeID       string `json:"node_id"`
	ShardID      string `json:"shard_id"`
	Network      string `json:"network,omitempty"`
	DataAddr     string `json:"data_addr"`
	CtlAddr      string `json:"ctl_addr"`
	Codec        string `json:"codec,omitempty"`
	Datalet      string `json:"datalet"`
	DataletCodec string `json:"datalet_codec,omitempty"`
	Topology     string `json:"topology"`
	Consistency  string `json:"consistency"`
	Coordinator  string `json:"coordinator,omitempty"`
	DLM          string `json:"dlm,omitempty"`
	SharedLog    string `json:"sharedlog,omitempty"`
}

func main() {
	configPath := flag.String("config", "", "JSON configuration file (required)")
	obsAddr := flag.String("obs-addr", "", "HTTP observability address (/metrics, /statusz, /tracez, pprof); empty disables")
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	var fc fileConfig
	if err := json.Unmarshal(raw, &fc); err != nil {
		log.Fatalf("parse %s: %v", *configPath, err)
	}
	if fc.Network == "" {
		fc.Network = "tcp"
	}
	if fc.Codec == "" {
		fc.Codec = "binary"
	}
	if fc.DataletCodec == "" {
		fc.DataletCodec = fc.Codec
	}
	net, err := transport.Lookup(fc.Network)
	if err != nil {
		log.Fatal(err)
	}
	codec, err := wire.LookupCodec(fc.Codec)
	if err != nil {
		log.Fatal(err)
	}
	dataletCodec, err := wire.LookupCodec(fc.DataletCodec)
	if err != nil {
		log.Fatal(err)
	}
	mode := topology.Mode{
		Topology:    topology.Topology(fc.Topology),
		Consistency: topology.Consistency(fc.Consistency),
	}
	s, err := controlet.Serve(controlet.Config{
		NodeID:          fc.NodeID,
		ShardID:         fc.ShardID,
		Network:         net,
		DataAddr:        fc.DataAddr,
		CtlAddr:         fc.CtlAddr,
		Codec:           codec,
		DataletAddr:     fc.Datalet,
		DataletCodec:    dataletCodec,
		Mode:            mode,
		CoordinatorAddr: fc.Coordinator,
		DLMAddr:         fc.DLM,
		SharedLogAddr:   fc.SharedLog,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bespokv-controlet %s (%s, shard %s): data=%s ctl=%s datalet=%s\n",
		fc.NodeID, mode, fc.ShardID, s.DataAddr(), s.CtlAddr(), fc.Datalet)
	o, err := obs.Start(*obsAddr, s.Status)
	if err != nil {
		log.Fatal(err)
	}
	if o != nil {
		fmt.Printf("observability on http://%s/\n", o.Addr())
		defer o.Close()
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
	_ = s.Close()
}
