// Command bespokv-cli is the operator's client: key operations against a
// running cluster, plus map administration against the coordinator.
//
//	bespokv-cli -coordinator 127.0.0.1:7000 put mykey myvalue
//	bespokv-cli -coordinator 127.0.0.1:7000 get mykey
//	bespokv-cli -coordinator 127.0.0.1:7000 del mykey
//	bespokv-cli -coordinator 127.0.0.1:7000 scan a z 10
//	bespokv-cli -coordinator 127.0.0.1:7000 map
//	bespokv-cli -coordinator 127.0.0.1:7000 setmap cluster.json
//	bespokv-cli -coordinator 127.0.0.1:7000 transition aa eventual
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"bespokv/internal/client"
	"bespokv/internal/coordinator"
	"bespokv/internal/obs"
	"bespokv/internal/topology"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

func main() {
	var (
		coordAddr = flag.String("coordinator", "127.0.0.1:7000", "coordinator address")
		network   = flag.String("network", "tcp", "transport (tcp or inproc)")
		table     = flag.String("table", "", "table name (default table when empty)")
		level     = flag.String("level", "default", "read consistency: default, strong, eventual")
		obsAddr   = flag.String("obs-addr", "", "HTTP observability address (/metrics, /statusz, /tracez, pprof); empty disables")
	)
	flag.Parse()
	if o, err := obs.Start(*obsAddr, nil); err != nil {
		log.Fatal(err)
	} else if o != nil {
		defer o.Close()
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	net, err := transport.Lookup(*network)
	if err != nil {
		log.Fatal(err)
	}

	switch args[0] {
	case "map", "setmap", "transition", "join", "drain", "rebalance", "migration", "top", "alerts", "rsm":
		admin, err := coordinator.DialCoordinator(net, *coordAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer admin.Close()
		runAdmin(admin, args)
		return
	}

	codec, err := wire.LookupCodec("binary")
	if err != nil {
		log.Fatal(err)
	}
	cli, err := client.New(client.Config{
		Network:         net,
		Codec:           codec,
		CoordinatorAddr: *coordAddr,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	switch args[0] {
	case "put":
		need(args, 3)
		if err := cli.Put(*table, []byte(args[1]), []byte(args[2])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "get":
		need(args, 2)
		lv := wire.LevelDefault
		switch *level {
		case "strong":
			lv = wire.LevelStrong
		case "eventual":
			lv = wire.LevelEventual
		}
		v, ok, err := cli.GetLevel(*table, []byte(args[1]), lv)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Printf("%s\n", v)
	case "del":
		need(args, 2)
		found, err := cli.Del(*table, []byte(args[1]))
		if err != nil {
			log.Fatal(err)
		}
		if !found {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Println("OK")
	case "scan":
		need(args, 3)
		limit := 0
		if len(args) > 3 {
			limit, err = strconv.Atoi(args[3])
			if err != nil {
				log.Fatal(err)
			}
		}
		kvs, err := cli.GetRange(*table, []byte(args[1]), []byte(args[2]), limit)
		if err != nil {
			log.Fatal(err)
		}
		for _, kv := range kvs {
			fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
		}
	case "mktable":
		need(args, 2)
		if err := cli.CreateTable(args[1]); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "rmtable":
		need(args, 2)
		if err := cli.DeleteTable(args[1]); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	default:
		usage()
	}
}

func runAdmin(admin *coordinator.Client, args []string) {
	switch args[0] {
	case "top":
		// One merged cluster snapshot, same rendering as /clusterz?format=text.
		snap, err := admin.Telemetry()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(snap.Text())
	case "alerts":
		snap, err := admin.Telemetry()
		if err != nil {
			log.Fatal(err)
		}
		out, err := json.MarshalIndent(map[string]any{"alerts": snap.Alerts}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	case "map":
		m, err := admin.GetMap()
		if err != nil {
			log.Fatal(err)
		}
		out, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	case "setmap":
		need(args, 2)
		raw, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		var m topology.Map
		if err := json.Unmarshal(raw, &m); err != nil {
			log.Fatal(err)
		}
		epoch, err := admin.SetMap(&m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("installed epoch %d\n", epoch)
	case "transition":
		need(args, 3)
		to := topology.Mode{
			Topology:    topology.Topology(args[1]),
			Consistency: topology.Consistency(args[2]),
		}
		if !to.Valid() {
			log.Fatalf("invalid mode %s+%s", args[1], args[2])
		}
		// The operator supplies new controlets out of band, then uses
		// the current shards as the new layout when only the
		// consistency handling changes in place.
		m, err := admin.GetMap()
		if err != nil {
			log.Fatal(err)
		}
		epoch, err := admin.BeginTransition(to, m.Shards)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("transition to %s started at epoch %d\n", to, epoch)
	case "join":
		// The operator boots the new shard's controlet–datalet pairs out
		// of band, then hands their addresses here as a shard JSON.
		need(args, 2)
		raw, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		var shard topology.Shard
		if err := json.Unmarshal(raw, &shard); err != nil {
			log.Fatal(err)
		}
		start, err := admin.JoinNode(shard)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migration %s started: sources=%v moved≈%.1f%%\n",
			start.ID, start.Sources, start.MovedFraction*100)
	case "drain":
		need(args, 2)
		start, err := admin.DrainNode(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migration %s started: sources=%v moved≈%.1f%%\n",
			start.ID, start.Sources, start.MovedFraction*100)
	case "rebalance":
		need(args, 2)
		raw, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		var shards []topology.Shard
		if err := json.Unmarshal(raw, &shards); err != nil {
			log.Fatal(err)
		}
		start, err := admin.Rebalance(shards)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migration %s started: sources=%v moved≈%.1f%%\n",
			start.ID, start.Sources, start.MovedFraction*100)
	case "rsm":
		st, err := admin.RSMStatus()
		if err != nil {
			// A standalone coordinator has no RSM group and so no handler.
			if strings.Contains(err.Error(), "unknown method") {
				fmt.Println("control plane runs standalone (no replication group)")
				return
			}
			log.Fatal(err)
		}
		fmt.Printf("member  %s (%s)\n", st.ID, st.State)
		fmt.Printf("leader  %s term %d\n", st.Leader, st.Term)
		fmt.Printf("log     commit=%d applied=%d last=%d snapshot=%d\n",
			st.CommitIndex, st.AppliedIndex, st.LastIndex, st.SnapshotIndex)
		for _, m := range st.Members {
			if m.Self {
				fmt.Printf("  %-8s %-20s self\n", m.ID, m.Addr)
				continue
			}
			fmt.Printf("  %-8s %-20s match=%d next=%d lag=%d ack_age=%dms\n",
				m.ID, m.Addr, m.Match, m.Next, m.LagEntries, m.AckAgeMS)
		}
	case "migration":
		st, err := admin.MigrationStatus()
		if err != nil {
			log.Fatal(err)
		}
		if st.Run == nil {
			fmt.Println("(no migration has run)")
			return
		}
		out, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bespokv-cli [flags] <command>

commands:
  put <key> <value>        write a pair
  get <key>                read a value (-level strong|eventual)
  del <key>                delete a key
  scan <start> <end> [n]   ordered range query
  mktable <name>           create a table
  rmtable <name>           drop a table
  map                      print the cluster map
  setmap <file.json>       install a cluster map
  transition <topo> <cons> start a mode transition in place
  join <shard.json>        add a shard; migrate its ring share in online
  drain <shard-id>         remove a shard; migrate its keyspace out online
  rebalance <shards.json>  migrate to an arbitrary target shard set
  migration                print the active (or last) migration run
  top                      cluster telemetry: per-shard rates, hot keys, alerts
  alerts                   SLO alert states as JSON
  rsm                      control-plane replication: leader, term, member lag`)
	os.Exit(2)
}
