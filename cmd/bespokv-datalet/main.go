// Command bespokv-datalet runs one single-node KV store — the data plane
// unit a controlet wraps into a distributed service.
//
//	bespokv-datalet -addr 127.0.0.1:7101 -engine ht
//	bespokv-datalet -addr 127.0.0.1:7102 -engine lsm -dir /var/lib/bespokv/d2
//	bespokv-datalet -addr 127.0.0.1:7103 -engine applog -dir ./log -codec text
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"bespokv/internal/datalet"
	"bespokv/internal/obs"
	"bespokv/internal/store"
	"bespokv/internal/store/applog"
	"bespokv/internal/store/btree"
	"bespokv/internal/store/ht"
	"bespokv/internal/store/lsm"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7101", "listen address")
		network = flag.String("network", "tcp", "transport (tcp or inproc)")
		engine  = flag.String("engine", "ht", "storage engine: ht, btree, applog, lsm")
		dir     = flag.String("dir", "", "data directory for persistent engines")
		codec   = flag.String("codec", "binary", "wire protocol: binary or text")
		name    = flag.String("name", "datalet", "instance name for logs")
		obsAddr = flag.String("obs-addr", "", "HTTP observability address (/metrics, /statusz, /tracez, pprof); empty disables")
	)
	flag.Parse()
	net, err := transport.Lookup(*network)
	if err != nil {
		log.Fatal(err)
	}
	c, err := wire.LookupCodec(*codec)
	if err != nil {
		log.Fatal(err)
	}
	newEngine, err := engineFactory(*engine, *dir)
	if err != nil {
		log.Fatal(err)
	}
	s, err := datalet.Serve(datalet.Config{
		Name:      *name,
		Network:   net,
		Addr:      *addr,
		Codec:     c,
		NewEngine: newEngine,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bespokv-datalet %q listening on %s (%s), engine=%s codec=%s\n",
		*name, s.Addr(), *network, *engine, *codec)
	o, err := obs.Start(*obsAddr, s.Status)
	if err != nil {
		log.Fatal(err)
	}
	if o != nil {
		fmt.Printf("observability on http://%s/\n", o.Addr())
		defer o.Close()
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
	_ = s.Close()
}

func engineFactory(name, dir string) (func(string) (store.Engine, error), error) {
	switch name {
	case "ht":
		return func(string) (store.Engine, error) { return ht.New(), nil }, nil
	case "btree":
		return func(string) (store.Engine, error) { return btree.New(), nil }, nil
	case "applog":
		return func(table string) (store.Engine, error) {
			sub := ""
			if dir != "" {
				sub = filepath.Join(dir, "t_"+table)
			}
			return applog.New(applog.Options{Dir: sub})
		}, nil
	case "lsm":
		return func(table string) (store.Engine, error) {
			sub := ""
			if dir != "" {
				sub = filepath.Join(dir, "t_"+table)
			}
			return lsm.New(lsm.Options{Dir: sub})
		}, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (ht, btree, applog, lsm)", name)
	}
}
