// Command bespokv-coordinator runs the control-plane metadata service:
// cluster map storage, heartbeat liveness, leader election, failover, and
// transition orchestration.
//
//	bespokv-coordinator -addr 127.0.0.1:7000 -heartbeat-timeout 5s
//
// Bootstrap a cluster by installing a map with bespokv-cli:
//
//	bespokv-cli -coordinator 127.0.0.1:7000 setmap cluster.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bespokv/internal/coordinator"
	"bespokv/internal/obs"
	"bespokv/internal/telemetry"
	"bespokv/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7000", "listen address")
		network = flag.String("network", "tcp", "transport (tcp or inproc)")
		hbTO    = flag.Duration("heartbeat-timeout", 5*time.Second, "declare a node dead after this silence")
		noFail  = flag.Bool("disable-failover", false, "turn the failure detector off")
		obsAddr = flag.String("obs-addr", "", "HTTP observability address (/metrics, /statusz, /tracez, pprof); empty disables")
	)
	flag.Parse()
	net, err := transport.Lookup(*network)
	if err != nil {
		log.Fatal(err)
	}
	s, err := coordinator.Serve(coordinator.Config{
		Network:          net,
		Addr:             *addr,
		HeartbeatTimeout: *hbTO,
		DisableFailover:  *noFail,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bespokv-coordinator listening on %s (%s), heartbeat timeout %v\n", s.Addr(), *network, *hbTO)
	if *obsAddr != "" {
		// The coordinator is the one binary that serves the cluster-wide
		// telemetry endpoints: /clusterz (what bespokv-cli top renders)
		// and /alertz, on top of the standard per-process set.
		o, err := obs.Serve(*obsAddr, obs.Options{
			Status:   s.Status,
			Clusterz: func() telemetry.ClusterSnapshot { return s.Telemetry().Cluster() },
			Alertz:   func() []telemetry.Alert { return s.Telemetry().SLO().Alerts() },
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observability on http://%s/\n", o.Addr())
		defer o.Close()
	}
	waitForSignal()
	_ = s.Close()
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}
