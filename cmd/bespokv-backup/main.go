// Command bespokv-backup dumps a running cluster's full contents to a
// CRC-checked file, or restores such a dump into a cluster (whose sharding
// may differ — keys re-route on the way in).
//
//	bespokv-backup -coordinator 127.0.0.1:7000 dump  cluster.bkv
//	bespokv-backup -coordinator 127.0.0.1:7000 restore cluster.bkv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bespokv/internal/backup"
	"bespokv/internal/client"
	"bespokv/internal/obs"
	"bespokv/internal/transport"
	"bespokv/internal/wire"
)

func main() {
	var (
		coordAddr = flag.String("coordinator", "127.0.0.1:7000", "coordinator address")
		network   = flag.String("network", "tcp", "transport (tcp or inproc)")
		obsAddr   = flag.String("obs-addr", "", "HTTP observability address (/metrics, /statusz, /tracez, pprof); empty disables")
	)
	flag.Parse()
	if o, err := obs.Start(*obsAddr, nil); err != nil {
		log.Fatal(err)
	} else if o != nil {
		defer o.Close()
	}
	args := flag.Args()
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: bespokv-backup [flags] dump|restore <file>")
		os.Exit(2)
	}
	net, err := transport.Lookup(*network)
	if err != nil {
		log.Fatal(err)
	}
	switch args[0] {
	case "dump":
		f, err := os.Create(args[1])
		if err != nil {
			log.Fatal(err)
		}
		stats, err := backup.Dump(net, *coordAddr, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dumped %d pairs across %d tables (%d bytes) to %s\n",
			stats.Pairs, stats.Tables, stats.Bytes, args[1])
	case "restore":
		f, err := os.Open(args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		codec, err := wire.LookupCodec("binary")
		if err != nil {
			log.Fatal(err)
		}
		cli, err := client.New(client.Config{
			Network:         net,
			Codec:           codec,
			CoordinatorAddr: *coordAddr,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		stats, err := backup.Restore(cli, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restored %d pairs across %d tables from %s\n",
			stats.Pairs, stats.Tables, args[1])
	default:
		fmt.Fprintln(os.Stderr, "usage: bespokv-backup [flags] dump|restore <file>")
		os.Exit(2)
	}
}
